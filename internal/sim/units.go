package sim

import (
	"math"
	"slices"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/tile"
)

// newPool derives the engine pool from a worker description. A worker with
// no declared streaming limit is constrained only by the shared memory
// bandwidth.
func newPool(w *model.Worker) *pool {
	p := &pool{
		name:        w.Name,
		workers:     w.Count,
		linkBW:      w.MaxStreamBW,
		perWorkerBW: math.Inf(1),
	}
	if w.Count > 0 && w.MaxStreamBW > 0 {
		p.perWorkerBW = w.MaxStreamBW / float64(w.Count)
	}
	return p
}

// buildHotPool converts the hot tiles into work units for the hot workers:
// a Figure 6(b) tiled traversal in panel-major order. Streaming workers
// fetch the full Din tile per tile; Dout follows the worker's reuse type,
// with inter-tile reuse charging the panel's rows once per panel (stream in
// on the panel's first hot tile, write back on its last). For SDDMM the
// write-back is the sparse output (one value per nonzero).
func buildHotPool(g *tile.Grid, hot []bool, a *arch.Arch, prm model.Params) *pool {
	w := &a.Hot
	p := newPool(w)
	rowBytes := float64(prm.K * w.ElemBytes)

	for tr := 0; tr < g.NumTR; tr++ {
		panel := g.Panel(tr)
		base := g.PanelStart[tr]
		firstHot, lastHot := -1, -1
		for i := range panel {
			if hot[base+i] {
				if firstHot < 0 {
					firstHot = i
				}
				lastHot = i
			}
		}
		if firstHot < 0 {
			continue
		}
		lo, hi := g.PanelRows(tr)
		panelH := hi - lo
		for i := range panel {
			if !hot[base+i] {
				continue
			}
			t := &panel[i]
			nnz := t.NNZ()
			tileW := g.TileW
			if (t.TC+1)*g.TileW > g.N {
				tileW = g.N - t.TC*g.TileW
			}

			stream := float64(model.SparseBytesAccessed(w.Format, nnz, panelH, w.IdxBytes, w.ElemBytes))
			switch w.DinReuse {
			case model.ReuseIntraStream:
				stream += float64(tileW) * rowBytes
			case model.ReuseIntraDemand:
				stream += float64(t.UniqCols) * rowBytes
			case model.ReuseNone:
				stream += float64(nnz) * rowBytes
			}

			var doutRead, doutWrite float64
			switch w.DoutReuse {
			case model.ReuseInter:
				if i == firstHot {
					doutRead = float64(panelH) * rowBytes
				}
				if i == lastHot {
					doutWrite = float64(panelH) * rowBytes
				}
			case model.ReuseIntraStream:
				doutRead = float64(panelH) * rowBytes
				doutWrite = float64(panelH) * rowBytes
			case model.ReuseIntraDemand:
				doutRead = float64(t.UniqRows) * rowBytes
				doutWrite = float64(t.UniqRows) * rowBytes
			case model.ReuseNone:
				doutRead = float64(nnz) * rowBytes
				doutWrite = float64(nnz) * rowBytes
			}
			if prm.Kernel == model.KernelSDDMM {
				doutWrite = float64(nnz * w.ElemBytes)
			}

			compute := w.ComputeTime(nnz, prm.K, prm.OpsPerMAC)
			flops := float64(nnz) * float64(prm.K) * prm.OpsPerMAC
			u := unit{flops: flops}
			// The streamer overlaps input streams and compute; the
			// write-back drains afterwards (model.StreamOverlap). Fully
			// overlapping workers fold everything into one phase.
			if len(w.OverlapGroups) == 1 {
				u.phases = []phase{{compute: compute, bytes: stream + doutRead + doutWrite}}
			} else {
				u.phases = []phase{
					{compute: compute, bytes: stream + doutRead},
					{bytes: doutWrite},
				}
			}
			p.units = append(p.units, u)
		}
	}
	return p
}

// buildColdPool converts the cold nonzeros into row-chunk work units for
// the cold workers: a Figure 6(a) untiled row-ordered traversal in chunks
// of a.ChunkRows consecutive rows (§VII-A). Din accesses go through each
// PE's simulated cache — the reuse source the analytical model ignores —
// while the sparse input and Dout bypass it (BBF-style).
func buildColdPool(g *tile.Grid, hot []bool, a *arch.Arch, prm model.Params) *pool {
	w := &a.Cold
	p := newPool(w)
	rowBytes := prm.K * w.ElemBytes

	// Gather the cold nonzeros in row-major order. Coordinates are packed
	// into one uint64 key per nonzero (row in the high word) so the sort
	// runs over machine words with an inlined comparison instead of a
	// reflective sort.Slice; key order equals (r, c) order and ties are
	// identical keys, so the resulting sequence matches the old comparator
	// exactly.
	coldNNZ := 0
	for i := range g.Tiles {
		if !hot[i] {
			coldNNZ += g.Tiles[i].NNZ()
		}
	}
	nzs := make([]uint64, 0, coldNNZ)
	for i := range g.Tiles {
		if hot[i] {
			continue
		}
		rows, cols, _ := g.TileNonzeros(i)
		for j := range rows {
			nzs = append(nzs, uint64(rows[j])<<32|uint64(uint32(cols[j])))
		}
	}
	slices.Sort(nzs)
	if len(nzs) == 0 {
		return p
	}

	chunkRows := a.ChunkRows
	if chunkRows <= 0 {
		chunkRows = 64
	}
	// Round-robin static chunk placement onto per-PE caches, optionally
	// backed by a shared last-level cache (the §X future-work extension):
	// private misses probe the shared level before reaching main memory.
	caches := make([]*cache, w.Count)
	for i := range caches {
		caches[i] = newCache(a.ColdCacheBytes, a.ColdCacheLine)
	}
	shared := newCache(a.SharedL2Bytes, a.ColdCacheLine)

	nzRow := func(k uint64) int32 { return int32(k >> 32) }
	nzCol := func(k uint64) int32 { return int32(uint32(k)) }
	start := 0
	chunkIdx := 0
	for start < len(nzs) {
		chunkBase := int(nzRow(nzs[start])) / chunkRows
		end := start
		rowsInChunk := 0
		lastRow := int32(-1)
		for end < len(nzs) && int(nzRow(nzs[end]))/chunkRows == chunkBase {
			if nzRow(nzs[end]) != lastRow {
				rowsInChunk++
				lastRow = nzRow(nzs[end])
			}
			end++
		}
		nnz := end - start

		var c *cache
		if w.Count > 0 {
			c = caches[chunkIdx%w.Count]
		}
		dinBytes := 0
		if w.DinReuse == model.ReuseNone || w.DinReuse == model.ReuseIntraDemand {
			for i := start; i < end; i++ {
				addr := uint64(nzCol(nzs[i])) * uint64(rowBytes)
				dinBytes += missThrough(c, shared, addr, rowBytes)
			}
		}
		if w.DinReuse == model.ReuseIntraStream {
			dinBytes = chunkRows * rowBytes // stream a full stripe
		}

		aBytes := model.SparseBytesAccessed(w.Format, nnz, rowsInChunk, w.IdxBytes, w.ElemBytes)
		// Dout: the chunk's rows are streamed through the BBF once
		// (read-modify-write), regardless of inter-tile reuse bookkeeping.
		// SDDMM reads its U rows once and writes one value per nonzero.
		doutBytes := 2 * rowsInChunk * rowBytes
		if prm.Kernel == model.KernelSDDMM {
			doutBytes = rowsInChunk*rowBytes + nnz*w.ElemBytes
		}

		compute := w.ComputeTime(nnz, prm.K, prm.OpsPerMAC)
		flops := float64(nnz) * float64(prm.K) * prm.OpsPerMAC
		u := unit{flops: flops}
		total := float64(aBytes + dinBytes + doutBytes)
		if len(w.OverlapGroups) == 1 {
			u.phases = []phase{{compute: compute, bytes: total}}
		} else {
			u.phases = []phase{
				{compute: compute, bytes: float64(aBytes+dinBytes) + float64(rowsInChunk*rowBytes)},
				{bytes: float64(rowsInChunk * rowBytes)},
			}
		}
		p.units = append(p.units, u)
		start = end
		chunkIdx++
	}
	return p
}

// accessOrFull runs a cached access when a cache exists, else charges the
// full size.
func accessOrFull(c *cache, addr uint64, n int) int {
	if c == nil {
		return n
	}
	return c.accessRange(addr, n)
}

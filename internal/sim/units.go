package sim

import (
	"math"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/tile"
)

// resetPool re-derives p from a worker description in place, keeping the
// unit backing array so a Runner rebuilds pools without allocating. A
// worker with no declared streaming limit is constrained only by the shared
// memory bandwidth.
func resetPool(p *pool, w *model.Worker) {
	p.name = w.Name
	p.workers = w.Count
	p.linkBW = w.MaxStreamBW
	p.perWorkerBW = math.Inf(1)
	if w.Count > 0 && w.MaxStreamBW > 0 {
		p.perWorkerBW = w.MaxStreamBW / float64(w.Count)
	}
	p.workerBW = nil
	p.units = p.units[:0]
}

// coldScratch is the cold-pool builder's reusable state: the filtered
// nonzero keys and the simulated per-PE cache hierarchy. The caches are
// rebuilt only when the architecture's geometry changes and reset (which is
// bit-identical to a fresh build) otherwise.
type coldScratch struct {
	nzs []uint64
	// lineBuf/lineBuf2 hold the private level's missed lines and the shared
	// level's re-misses during the two-pass fold replay (see buildColdPoolInto).
	lineBuf, lineBuf2 []uint64
	caches            []*cache
	shared            *cache
	// Geometry of the cached hierarchy.
	cacheBytes, cacheLine, sharedBytes, count int
}

// cachesFor returns the per-PE and shared caches for architecture a,
// reusing s's when the geometry matches. A nil scratch builds fresh ones.
func (s *coldScratch) cachesFor(a *arch.Arch, count int) ([]*cache, *cache) {
	if s != nil && s.count == count && s.cacheBytes == a.ColdCacheBytes &&
		s.cacheLine == a.ColdCacheLine && s.sharedBytes == a.SharedL2Bytes {
		for _, c := range s.caches {
			c.reset()
		}
		s.shared.reset()
		return s.caches, s.shared
	}
	caches := make([]*cache, count)
	for i := range caches {
		caches[i] = newCache(a.ColdCacheBytes, a.ColdCacheLine)
	}
	shared := newCache(a.SharedL2Bytes, a.ColdCacheLine)
	if s != nil {
		s.caches, s.shared = caches, shared
		s.cacheBytes, s.cacheLine = a.ColdCacheBytes, a.ColdCacheLine
		s.sharedBytes, s.count = a.SharedL2Bytes, count
	}
	return caches, shared
}

// buildHotPool converts the hot tiles into work units for the hot workers:
// a Figure 6(b) tiled traversal in panel-major order. Streaming workers
// fetch the full Din tile per tile; Dout follows the worker's reuse type,
// with inter-tile reuse charging the panel's rows once per panel (stream in
// on the panel's first hot tile, write back on its last). For SDDMM the
// write-back is the sparse output (one value per nonzero).
func buildHotPool(g *tile.Grid, hot []bool, a *arch.Arch, prm model.Params) *pool {
	p := &pool{}
	buildHotPoolInto(p, g, hot, a, prm)
	return p
}

// buildHotPoolInto is buildHotPool over a caller-owned pool whose unit
// array is reused across runs (the Runner path).
func buildHotPoolInto(p *pool, g *tile.Grid, hot []bool, a *arch.Arch, prm model.Params) {
	w := &a.Hot
	resetPool(p, w)
	rowBytes := float64(prm.K * w.ElemBytes)

	for tr := 0; tr < g.NumTR; tr++ {
		panel := g.Panel(tr)
		base := g.PanelStart[tr]
		firstHot, lastHot := -1, -1
		for i := range panel {
			if hot[base+i] {
				if firstHot < 0 {
					firstHot = i
				}
				lastHot = i
			}
		}
		if firstHot < 0 {
			continue
		}
		lo, hi := g.PanelRows(tr)
		panelH := hi - lo
		for i := range panel {
			if !hot[base+i] {
				continue
			}
			t := &panel[i]
			nnz := t.NNZ()
			tileW := g.TileW
			if (t.TC+1)*g.TileW > g.N {
				tileW = g.N - t.TC*g.TileW
			}

			stream := float64(model.SparseBytesAccessed(w.Format, nnz, panelH, w.IdxBytes, w.ElemBytes))
			switch w.DinReuse {
			case model.ReuseIntraStream:
				stream += float64(tileW) * rowBytes
			case model.ReuseIntraDemand:
				stream += float64(t.UniqCols) * rowBytes
			case model.ReuseNone:
				stream += float64(nnz) * rowBytes
			}

			var doutRead, doutWrite float64
			switch w.DoutReuse {
			case model.ReuseInter:
				if i == firstHot {
					doutRead = float64(panelH) * rowBytes
				}
				if i == lastHot {
					doutWrite = float64(panelH) * rowBytes
				}
			case model.ReuseIntraStream:
				doutRead = float64(panelH) * rowBytes
				doutWrite = float64(panelH) * rowBytes
			case model.ReuseIntraDemand:
				doutRead = float64(t.UniqRows) * rowBytes
				doutWrite = float64(t.UniqRows) * rowBytes
			case model.ReuseNone:
				doutRead = float64(nnz) * rowBytes
				doutWrite = float64(nnz) * rowBytes
			}
			if prm.Kernel == model.KernelSDDMM {
				doutWrite = float64(nnz * w.ElemBytes)
			}

			compute := w.ComputeTime(nnz, prm.K, prm.OpsPerMAC)
			flops := float64(nnz) * float64(prm.K) * prm.OpsPerMAC
			u := unit{flops: flops}
			// The streamer overlaps input streams and compute; the
			// write-back drains afterwards (model.StreamOverlap). Fully
			// overlapping workers fold everything into one phase.
			if len(w.OverlapGroups) == 1 {
				u.addPhase(phase{compute: compute, bytes: stream + doutRead + doutWrite})
			} else {
				u.addPhase(phase{compute: compute, bytes: stream + doutRead})
				u.addPhase(phase{bytes: doutWrite})
			}
			p.units = append(p.units, u)
		}
	}
}

// buildColdPool converts the cold nonzeros into row-chunk work units for
// the cold workers: a Figure 6(a) untiled row-ordered traversal in chunks
// of a.ChunkRows consecutive rows (§VII-A). Din accesses go through each
// PE's simulated cache — the reuse source the analytical model ignores —
// while the sparse input and Dout bypass it (BBF-style).
func buildColdPool(g *tile.Grid, hot []bool, a *arch.Arch, prm model.Params) *pool {
	p := &pool{}
	buildColdPoolInto(p, nil, g, hot, a, prm)
	return p
}

// buildColdPoolInto is buildColdPool over a caller-owned pool and scratch
// (either may carry reusable capacity; a nil scratch allocates fresh).
func buildColdPoolInto(p *pool, s *coldScratch, g *tile.Grid, hot []bool, a *arch.Arch, prm model.Params) {
	w := &a.Cold
	resetPool(p, w)
	rowBytes := prm.K * w.ElemBytes

	// All-hot assignments (the HotOnly strategy) have no cold work at all;
	// skip the O(nnz) filter below on the cheap O(tiles) evidence.
	anyCold := false
	for _, h := range hot {
		if !h {
			anyCold = true
			break
		}
	}
	if !anyCold {
		return
	}

	// Gather the cold nonzeros in row-major order by filtering the grid's
	// cached row-major view: coordinates arrive packed into one uint64 key
	// per nonzero (row in the high word) in globally (r, c)-ascending order,
	// so selecting the cold subset preserves exactly the order the old
	// gather-then-sort produced — without re-sorting per run, which used to
	// dominate sweep time.
	keys, tileOf := g.RowMajor()
	var nzs []uint64
	if s != nil {
		nzs = s.nzs[:0]
	}
	if cap(nzs) < len(keys) {
		nzs = make([]uint64, 0, len(keys))
	}
	for i, k := range keys {
		if !hot[tileOf[i]] {
			nzs = append(nzs, k)
		}
	}
	if s != nil {
		s.nzs = nzs
	}
	if len(nzs) == 0 {
		return
	}

	chunkRows := a.ChunkRows
	if chunkRows <= 0 {
		chunkRows = 64
	}
	// Round-robin static chunk placement onto per-PE caches, optionally
	// backed by a shared last-level cache (the §X future-work extension):
	// private misses probe the shared level before reaching main memory.
	caches, shared := s.cachesFor(a, w.Count)

	nzRow := func(k uint64) int32 { return int32(k >> 32) }
	nzCol := func(k uint64) int32 { return int32(uint32(k)) }
	var foldPrivate *cache
	if w.Count > 0 {
		foldPrivate = caches[0]
	}
	foldL := dinFoldFactor(foldPrivate, shared, rowBytes)
	// The chunk-boundary scan divides every nonzero's row by chunkRows; for
	// the power-of-two chunk sizes every preset uses, a shift replaces the
	// integer division on that per-nonzero path (rows are non-negative, so
	// the two agree exactly).
	chunkShift := -1
	if chunkRows&(chunkRows-1) == 0 {
		for s := chunkRows; s > 1; s >>= 1 {
			chunkShift++
		}
		chunkShift++
	}
	var lineBuf, lineBuf2 []uint64
	if s != nil {
		lineBuf, lineBuf2 = s.lineBuf, s.lineBuf2
	}
	start := 0
	chunkIdx := 0
	for start < len(nzs) {
		chunkBase := int(nzRow(nzs[start])) / chunkRows
		if chunkShift >= 0 {
			chunkBase = int(nzRow(nzs[start])) >> chunkShift
		}
		end := start
		rowsInChunk := 0
		lastRow := int32(-1)
		for end < len(nzs) {
			r := nzRow(nzs[end])
			cb := int(r) / chunkRows
			if chunkShift >= 0 {
				cb = int(r) >> chunkShift
			}
			if cb != chunkBase {
				break
			}
			if r != lastRow {
				rowsInChunk++
				lastRow = r
			}
			end++
		}
		nnz := end - start

		var c *cache
		if w.Count > 0 {
			c = caches[chunkIdx%w.Count]
		}
		dinBytes := 0
		if w.DinReuse == model.ReuseNone || w.DinReuse == model.ReuseIntraDemand {
			switch {
			case c == nil && shared == nil:
				dinBytes = nnz * rowBytes
			case foldL > 1:
				// Line-class folding: each Din row spans foldL lines that
				// live in disjoint, isomorphic set classes with identical
				// access sequences, so one line per row stands in for all of
				// them (see dinFoldFactor for the argument). Bit-identical
				// to probing every line, at 1/foldL the cost. The row's
				// class-0 line number is col·foldL, and a row that misses
				// through the hierarchy charges its full foldL·lineSize =
				// rowBytes.
				//
				// The replay runs in two passes — the private level over the
				// chunk's keys collecting missed lines, then the shared
				// level over those misses — instead of interleaving the two
				// probes per nonzero. The private cache's decisions never
				// depend on the shared level, and the shared level sees
				// exactly the private misses in access order either way, so
				// the split is bit-identical; it exists to run each level as
				// one tight loop (cache.missLinesFold).
				first := c
				if first == nil {
					first = shared
				}
				lineBuf = first.missLinesFold(nzs[start:end], uint64(foldL), lineBuf)
				miss := lineBuf
				if c != nil && shared != nil {
					lineBuf2 = shared.missLines(lineBuf, lineBuf2)
					miss = lineBuf2
				}
				dinBytes = len(miss) * rowBytes
			default:
				for i := start; i < end; i++ {
					addr := uint64(nzCol(nzs[i])) * uint64(rowBytes)
					dinBytes += missThrough(c, shared, addr, rowBytes)
				}
			}
		}
		if w.DinReuse == model.ReuseIntraStream {
			dinBytes = chunkRows * rowBytes // stream a full stripe
		}

		aBytes := model.SparseBytesAccessed(w.Format, nnz, rowsInChunk, w.IdxBytes, w.ElemBytes)
		// Dout: the chunk's rows are streamed through the BBF once
		// (read-modify-write), regardless of inter-tile reuse bookkeeping.
		// SDDMM reads its U rows once and writes one value per nonzero.
		doutBytes := 2 * rowsInChunk * rowBytes
		if prm.Kernel == model.KernelSDDMM {
			doutBytes = rowsInChunk*rowBytes + nnz*w.ElemBytes
		}

		compute := w.ComputeTime(nnz, prm.K, prm.OpsPerMAC)
		flops := float64(nnz) * float64(prm.K) * prm.OpsPerMAC
		u := unit{flops: flops}
		total := float64(aBytes + dinBytes + doutBytes)
		if len(w.OverlapGroups) == 1 {
			u.addPhase(phase{compute: compute, bytes: total})
		} else {
			u.addPhase(phase{compute: compute, bytes: float64(aBytes+dinBytes) + float64(rowsInChunk*rowBytes)})
			u.addPhase(phase{bytes: float64(rowsInChunk * rowBytes)})
		}
		p.units = append(p.units, u)
		start = end
		chunkIdx++
	}
	if s != nil {
		s.lineBuf, s.lineBuf2 = lineBuf, lineBuf2
	}
}

// accessOrFull runs a cached access when a cache exists, else charges the
// full size.
func accessOrFull(c *cache, addr uint64, n int) int {
	if c == nil {
		return n
	}
	return c.accessRange(addr, n)
}

package sim

import (
	"testing"

	"repro/internal/arch"
)

// TestRunDeterministic: the simulator is a pure function of its inputs —
// repeated runs produce bit-identical timing and statistics. Determinism is
// what makes the experiment harness and the calibration search trustworthy.
func TestRunDeterministic(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, _ := testSetup(t, &a, 81)
	first, err := Run(g, res.Hot, &a, nil, Options{SkipFunctional: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(g, res.Hot, &a, nil, Options{SkipFunctional: true, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if again.Time != first.Time ||
			again.HotBytes != first.HotBytes || again.ColdBytes != first.ColdBytes ||
			again.HotElapsed != first.HotElapsed || again.ColdElapsed != first.ColdElapsed ||
			again.MergeTime != first.MergeTime {
			t.Fatalf("run %d diverged: %+v vs %+v", i, again, first)
		}
		if len(again.Trace) != len(first.Trace) {
			t.Fatalf("trace length diverged: %d vs %d", len(again.Trace), len(first.Trace))
		}
		for j := range again.Trace {
			if again.Trace[j].T != first.Trace[j].T || again.Trace[j].BW != first.Trace[j].BW {
				t.Fatalf("trace point %d diverged", j)
			}
		}
	}
}

// TestRunSerialUnaffectedByParallelHistory: serial and parallel runs over
// the same inputs must not share mutable state (fresh pools per run).
func TestRunModesIndependent(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, _ := testSetup(t, &a, 82)
	p1, err := Run(g, res.Hot, &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, res.Hot, &a, nil, Options{Serial: true, SkipFunctional: true}); err != nil {
		t.Fatal(err)
	}
	p2, err := Run(g, res.Hot, &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Time != p2.Time || p1.HotBytes != p2.HotBytes {
		t.Fatal("interleaved serial run perturbed parallel results")
	}
}

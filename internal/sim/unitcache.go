package sim

import (
	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/tile"
)

// UnitCache memoizes built hot/cold unit pools across runs, keyed on the
// grid, the tile assignment, and the pool geometry (architecture plus the
// kernel parameters the builders read). Sweeps that revisit a (matrix,
// assignment, architecture) combination — arch variants sharing a matrix,
// GNN layers reusing one plan, batch requests against a shared grid — skip
// unit construction entirely on the repeat runs.
//
// Grid and architecture are keyed by pointer identity: callers must treat
// both as immutable once simulated (the repo-wide convention already) and
// must pass the same pointers to get hits. Cached pools are shared
// read-only by every run that hits, including concurrent ones; the engine
// never writes to a pool.
//
// The zero value is ready to use.
type UnitCache struct {
	c par.Cache[unitCacheKey, *unitPools]
}

type unitCacheKey struct {
	g      *tile.Grid
	arch   *arch.Arch
	hot    string // assignment bitmap, packed 8 tiles per byte
	k      int
	ops    float64
	kernel model.Kernel
}

type unitPools struct {
	hot, cold *pool
}

// packAssignment packs the per-tile hot bits into a comparable string.
func packAssignment(hot []bool) string {
	b := make([]byte, (len(hot)+7)/8)
	for i, h := range hot {
		if h {
			b[i/8] |= 1 << (i % 8)
		}
	}
	return string(b)
}

// get returns the pools for the combination, building them on first use.
func (uc *UnitCache) get(g *tile.Grid, hot []bool, a *arch.Arch, prm model.Params) (*unitPools, error) {
	key := unitCacheKey{
		g: g, arch: a, hot: packAssignment(hot),
		k: prm.K, ops: prm.OpsPerMAC, kernel: prm.Kernel,
	}
	return uc.c.Get(key, func() (*unitPools, error) {
		return &unitPools{
			hot:  buildHotPool(g, hot, a, prm),
			cold: buildColdPool(g, hot, a, prm),
		}, nil
	})
}

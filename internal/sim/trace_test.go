package sim

import (
	"math"
	"testing"

	"repro/internal/arch"
)

func TestTraceIntegralMatchesTraffic(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, _ := testSetup(t, &a, 61)
	r, err := Run(g, res.Hot, &a, nil, Options{SkipFunctional: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	moved := MovedBytes(r.Trace)
	want := r.HotBytes + r.ColdBytes
	if math.Abs(moved-want) > 1e-3*want {
		t.Fatalf("trace integral %.6g vs engine traffic %.6g", moved, want)
	}
	// The peak grant can never exceed the system bandwidth.
	if PeakBW(r.Trace) > a.BWBytes*(1+1e-9) {
		t.Fatalf("trace peak %.3g exceeds system bandwidth %.3g", PeakBW(r.Trace), a.BWBytes)
	}
	// Timestamps are monotone and intervals cover [0, Time) at most.
	last := -1.0
	for _, p := range r.Trace {
		if p.T < last {
			t.Fatal("trace timestamps not monotone")
		}
		last = p.T
		if p.T+p.Dt > r.Time-r.MergeTime+1e-9 {
			t.Fatalf("trace interval [%g, %g) beyond compute span %g", p.T, p.T+p.Dt, r.Time)
		}
		if len(p.PoolBW) != 2 {
			t.Fatalf("pool split has %d entries", len(p.PoolBW))
		}
		sum := p.PoolBW[0] + p.PoolBW[1]
		if math.Abs(sum-p.BW) > 1e-6*(1+p.BW) {
			t.Fatalf("pool split %g does not sum to total %g", sum, p.BW)
		}
	}
}

func TestTraceSerialConcatenation(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, _ := testSetup(t, &a, 62)
	r, err := Run(g, res.Hot, &a, nil, Options{Serial: true, SkipFunctional: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	moved := MovedBytes(r.Trace)
	want := r.HotBytes + r.ColdBytes
	if math.Abs(moved-want) > 1e-3*want {
		t.Fatalf("serial trace integral %.6g vs traffic %.6g", moved, want)
	}
	// During the cold segment the hot pool share is zero and vice versa.
	sawColdPhase, sawHotPhase := false, false
	for _, p := range r.Trace {
		if p.PoolBW[0] > 0 && p.PoolBW[1] == 0 {
			sawColdPhase = true
		}
		if p.PoolBW[1] > 0 && p.PoolBW[0] == 0 {
			sawHotPhase = true
		}
		if p.PoolBW[0] > 0 && p.PoolBW[1] > 0 {
			t.Fatal("serial run has overlapping pool bandwidth")
		}
	}
	if !sawColdPhase || !sawHotPhase {
		t.Fatalf("expected both serial phases (cold=%v hot=%v)", sawColdPhase, sawHotPhase)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, _ := testSetup(t, &a, 63)
	r, err := Run(g, res.Hot, &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace != nil {
		t.Fatal("trace recorded without Options.Trace")
	}
}

func TestMovedBytesAndPeakEmpty(t *testing.T) {
	if MovedBytes(nil) != 0 || PeakBW(nil) != 0 {
		t.Fatal("empty trace stats should be zero")
	}
}

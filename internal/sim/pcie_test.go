package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/partition"
)

// TestPCIeLinkCapsHotBandwidth checks the +PCIe architecture end to end:
// the off-die Sextans can never draw more than the 32 GB/s link, visible in
// both the trace's per-pool split and the HotOnly makespan.
func TestPCIeLinkCapsHotBandwidth(t *testing.T) {
	a := scaledArch(arch.SpadeSextansPCIe(), 64)
	g, _, _ := testSetup(t, &a, 71)

	r, err := Run(g, partition.AllHot(g), &a, nil, Options{SkipFunctional: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	const pcie = 32e9
	for _, p := range r.Trace {
		if p.PoolBW[1] > pcie*(1+1e-9) {
			t.Fatalf("hot pool drew %.3g B/s over a %.3g link", p.PoolBW[1], pcie)
		}
	}
	// The makespan respects the link as a hard lower bound.
	if r.Time < r.HotBytes/pcie-1e-12 {
		t.Fatalf("HotOnly time %.3e below link-limited bound %.3e", r.Time, r.HotBytes/pcie)
	}

	// The on-die SPADE pool is not PCIe-limited: a heterogeneous run may
	// exceed 32 GB/s in aggregate.
	res, err := partition.HotTiles(g, a.Config(2))
	if err != nil {
		t.Fatal(err)
	}
	both, err := Run(g, res.Hot, &a, nil, Options{Serial: res.Serial, SkipFunctional: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if PeakBW(both.Trace) <= pcie {
		t.Fatalf("aggregate peak %.3g should exceed the PCIe link", PeakBW(both.Trace))
	}
}

// TestPCIeSlowsHotOnly: the same HotOnly workload must be slower behind the
// PCIe link than with the on-die Sextans of the plain architecture.
func TestPCIeSlowsHotOnly(t *testing.T) {
	onDie := scaledArch(arch.SpadeSextans(4), 64)
	offDie := scaledArch(arch.SpadeSextansPCIe(), 64)
	g, _, _ := testSetup(t, &onDie, 72)
	hot := partition.AllHot(g)
	rOn, err := Run(g, hot, &onDie, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := Run(g, hot, &offDie, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if rOff.Time <= rOn.Time {
		t.Fatalf("PCIe HotOnly %.3e not slower than on-die %.3e", rOff.Time, rOn.Time)
	}
}

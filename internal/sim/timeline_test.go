package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
)

// TestEngineTimelineEvents runs the bench workload with a timeline
// attached and checks the recorded per-worker events are self-consistent:
// every unit produces one EvWorkerRun, the run slices' byte payloads sum
// to the engine's reported traffic, every worker idles exactly once, and
// event timestamps never exceed the makespan.
func TestEngineTimelineEvents(t *testing.T) {
	pools := benchEnginePools()
	tl := obs.NewTimeline(0)
	deep := newEngineDeep(tl, "run", pools)
	makespan, stats, err := runEngineObserved(pools, 150e9, nil, deep)
	if err != nil {
		t.Fatal(err)
	}

	units := 0
	for _, p := range pools {
		units += len(p.units)
	}
	workers := 0
	for _, p := range pools {
		workers += p.workers
	}

	runs, idles, grants := 0, 0, 0
	bytes := 0.0
	endNS := simNS(makespan)
	for _, ev := range tl.Events() {
		if ev.TS < 0 || ev.TS+ev.Dur > endNS+1 {
			t.Fatalf("event %+v outside [0, %d]", ev, endNS)
		}
		switch ev.Kind {
		case obs.EvWorkerRun:
			runs++
			bytes += ev.Value
			if ev.Dur <= 0 {
				t.Fatalf("unit slice with non-positive duration: %+v", ev)
			}
		case obs.EvWorkerIdle:
			idles++
		case obs.EvGrant:
			grants++
		default:
			t.Fatalf("unexpected event kind %d from a sim run", ev.Kind)
		}
	}
	if runs != units {
		t.Fatalf("recorded %d unit slices, want %d", runs, units)
	}
	if idles != workers {
		t.Fatalf("recorded %d idle instants, want %d (one per worker)", idles, workers)
	}
	if grants == 0 {
		t.Fatal("no grant samples recorded on a bandwidth-saturated run")
	}
	total := 0.0
	for _, s := range stats {
		total += s.Bytes
	}
	if diff := bytes - total; diff > 1 || diff < -1 {
		t.Fatalf("unit slice bytes sum %g != engine traffic %g", bytes, total)
	}
	if stepWidthHist.Count() == 0 {
		t.Fatal("step-width histogram recorded nothing")
	}
}

// TestEngineTimelineDropsNotGrows overflows the preallocated event buffer
// (capacity math sized for the real run is bypassed with a tiny buffer)
// and checks the engine drops the excess instead of growing — the
// guarantee behind the traced zero-alloc pin.
func TestEngineTimelineDropsNotGrows(t *testing.T) {
	pools := benchEnginePools()
	tl := obs.NewTimeline(0)
	deep := newEngineDeep(tl, "drop", pools)
	deep.events = deep.events[:0:8] // shrink capacity under the event count
	if _, _, err := runEngineObserved(pools, 150e9, nil, deep); err != nil {
		t.Fatal(err)
	}
	if got := len(tl.Events()); got != 8 {
		t.Fatalf("flushed %d events, want exactly the buffer capacity 8", got)
	}
	if timelineDropped.Load() == 0 {
		t.Fatal("sim.timeline.dropped not bumped on overflow")
	}
}

// TestRunWithTimeline drives the public sim.Run path with a timeline and
// checks both serial and parallel modes produce worker tracks under the
// caller's label, with the serial hot leg offset onto the shared clock.
func TestRunWithTimeline(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res0, _ := testSetup(t, &a, 1)
	for _, serial := range []bool{false, true} {
		tl := obs.NewTimeline(0)
		res, err := Run(g, res0.Hot, &a, nil, Options{
			Serial:         serial,
			SkipFunctional: true,
			Timeline:       tl,
			TimelineLabel:  "fixture",
		})
		if err != nil {
			t.Fatal(err)
		}
		evs := tl.Events()
		if len(evs) == 0 {
			t.Fatalf("serial=%v: no timeline events", serial)
		}
		endNS := simNS(res.Time)
		for _, ev := range evs {
			if ev.TS+ev.Dur > endNS+1 {
				t.Fatalf("serial=%v: event %+v beyond makespan %d", serial, ev, endNS)
			}
		}
	}
}

// BenchmarkEngineTimeline is BenchmarkEngine with the full deep-
// observability layer attached: per-worker event recording plus the
// step-width histogram. Compared against BenchmarkEngine it bounds the
// tracing overhead (the issue budget is 5%).
func BenchmarkEngineTimeline(b *testing.B) {
	pools := benchEnginePools()
	tl := obs.NewTimeline(0)
	deep := newEngineDeep(tl, "bench", pools)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deep.reset()
		if _, _, err := runEngineObserved(pools, 150e9, nil, deep); err != nil {
			b.Fatal(err)
		}
	}
}

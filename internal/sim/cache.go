// Package sim is the heterogeneous-accelerator simulator substituting for
// the paper's SST+DRAMSim3 and Sniper-based PIUMA simulators (§VII-A,
// DESIGN.md §2). It is a fluid event-driven model: each worker advances
// through work units (tiles for the hot streamers, row chunks for the cold
// workers) whose compute-cycle and memory-byte demands are derived from the
// simulated microarchitecture — including the per-PE caches whose reuse the
// analytical model deliberately ignores. Memory bandwidth is a shared
// resource allocated max-min fairly among active workers. The simulator
// also executes SpMM functionally so every run is checked against the
// reference kernel.
package sim

// cache is a set-associative LRU cache model used for the cold workers'
// Din accesses (SPADE's per-PE L1, PIUMA's MTP cache). The sparse input and
// Dout bypass it (SPADE's BBF / PIUMA's streaming engines).
type cache struct {
	sets     int
	ways     int
	lineSize int
	// Fast-geometry fields: when the line size (resp. set count) is a power
	// of two — the overwhelmingly common configuration — address-to-line
	// and line-to-set mapping use a shift (resp. mask) instead of integer
	// division, which sits on the cold-pool construction hot path (one
	// probe per nonzero per dense row line). The mapping is identical to
	// the division it replaces.
	lineShift int // log2(lineSize); -1 when lineSize is not a power of two
	setMask   uint64
	setPow2   bool
	// tags[set*ways+way] holds the line address + 1 (0 = invalid).
	tags []uint64
	// lru[set*ways+way] is the last-use stamp.
	lru   []uint64
	clock uint64
}

// newCache builds a cache of the given total capacity; returns nil when the
// capacity is zero (cache disabled).
func newCache(capacityBytes, lineSize int) *cache {
	if capacityBytes <= 0 || lineSize <= 0 {
		return nil
	}
	const ways = 8
	lines := capacityBytes / lineSize
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	c := &cache{
		sets:      sets,
		ways:      ways,
		lineSize:  lineSize,
		lineShift: -1,
		tags:      make([]uint64, sets*ways),
		lru:       make([]uint64, sets*ways),
	}
	if lineSize&(lineSize-1) == 0 {
		for s := lineSize; s > 1; s >>= 1 {
			c.lineShift++
		}
		c.lineShift++
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint64(sets - 1)
		c.setPow2 = true
	}
	return c
}

// reset restores the cache to its just-built state — every line invalid,
// the LRU clock at zero — without reallocating, so a Runner reuses the
// model across runs. A reset cache behaves bit-identically to a fresh
// newCache of the same geometry.
func (c *cache) reset() {
	if c == nil {
		return
	}
	clear(c.tags)
	clear(c.lru)
	c.clock = 0
}

// lineOf maps a byte address to its line number.
func (c *cache) lineOf(addr uint64) uint64 {
	if c.lineShift >= 0 {
		return addr >> uint(c.lineShift)
	}
	return addr / uint64(c.lineSize)
}

// accessLine touches line (a line number, not a byte address) and reports
// whether it hit.
func (c *cache) accessLine(line uint64) bool {
	var set int
	if c.setPow2 {
		set = int(line & c.setMask)
	} else {
		set = int(line % uint64(c.sets))
	}
	base := set * c.ways
	c.clock++
	tag := line + 1
	// Hit scan first (tags only), victim scan only on a miss: hits — the
	// common case — touch one lru slot instead of scanning both arrays.
	// The victim is the first way with the minimal stamp, exactly what the
	// previous fused scan selected.
	tags := c.tags[base : base+c.ways]
	for w, t := range tags {
		if t == tag {
			c.lru[base+w] = c.clock
			return true
		}
	}
	lru := c.lru[base : base+c.ways]
	victim, oldest := 0, lru[0]
	for w := 1; w < len(lru); w++ {
		if lru[w] < oldest {
			oldest = lru[w]
			victim = w
		}
	}
	c.tags[base+victim] = tag
	lru[victim] = c.clock
	return false
}

// missLinesFold probes the class-0 line (col·foldL) of every packed
// (row, col) key through c and appends each missed line, in key order, to
// out (which is reset to empty first and returned). It is bit-identical to
// calling accessLine(col·foldL) once per key — same hit/miss outcomes, same
// clock advance, same victim choices — with the per-call slice and clock
// bookkeeping hoisted out of the per-nonzero path; this loop replaces
// accessLine on the cold-pool construction hot path, where one probe runs
// per cold nonzero per strategy.
//
//hot:path
func (c *cache) missLinesFold(nzs []uint64, foldL uint64, out []uint64) []uint64 {
	out = out[:0]
	if c.ways != 8 || !c.setPow2 {
		for _, k := range nzs {
			line := uint64(uint32(k)) * foldL
			if !c.accessLine(line) {
				out = append(out, line)
			}
		}
		return out
	}
	mask, clk := c.setMask, c.clock
	tags, lru := c.tags, c.lru
	for _, k := range nzs {
		line := uint64(uint32(k)) * foldL
		base := int(line&mask) * 8
		t8 := (*[8]uint64)(tags[base:])
		l8 := (*[8]uint64)(lru[base:])
		clk++
		tag := line + 1
		hit := false
		for w, t := range t8 {
			if t == tag {
				l8[w] = clk
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		victim, oldest := 0, l8[0]
		for w := 1; w < 8; w++ {
			if l8[w] < oldest {
				oldest = l8[w]
				victim = w
			}
		}
		t8[victim] = tag
		l8[victim] = clk
		out = append(out, line)
	}
	c.clock = clk
	return out
}

// missLines is missLinesFold over already-computed line numbers: it probes
// each line through c (the shared level re-probing the private level's
// misses) and appends the lines that miss again to out (reset first).
// Bit-identical to calling accessLine per line.
//
//hot:path
func (c *cache) missLines(lines []uint64, out []uint64) []uint64 {
	out = out[:0]
	if c.ways != 8 || !c.setPow2 {
		for _, line := range lines {
			if !c.accessLine(line) {
				out = append(out, line)
			}
		}
		return out
	}
	mask, clk := c.setMask, c.clock
	tags, lru := c.tags, c.lru
	for _, line := range lines {
		base := int(line&mask) * 8
		t8 := (*[8]uint64)(tags[base:])
		l8 := (*[8]uint64)(lru[base:])
		clk++
		tag := line + 1
		hit := false
		for w, t := range t8 {
			if t == tag {
				l8[w] = clk
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		victim, oldest := 0, l8[0]
		for w := 1; w < 8; w++ {
			if l8[w] < oldest {
				oldest = l8[w]
				victim = w
			}
		}
		t8[victim] = tag
		l8[victim] = clk
		out = append(out, line)
	}
	c.clock = clk
	return out
}

// access touches the line containing byte address addr and reports whether
// it hit.
func (c *cache) access(addr uint64) bool {
	return c.accessLine(c.lineOf(addr))
}

// accessRange touches every line of [addr, addr+n) and returns the number
// of bytes that missed (whole missing lines).
func (c *cache) accessRange(addr uint64, n int) int {
	if c == nil {
		return n
	}
	missed := 0
	first := c.lineOf(addr)
	last := c.lineOf(addr + uint64(n) - 1)
	for line := first; line <= last; line++ {
		if !c.accessLine(line) {
			missed += c.lineSize
		}
	}
	return missed
}

// dinFoldFactor reports the line-class fold factor L for Din row accesses of
// rowBytes through the (private, shared) hierarchy: when it returns L > 1,
// simulating a single line per row and multiplying the missed bytes by L is
// bit-identical to probing all L lines of the row.
//
// Why this is exact: every Din access in the cold builder starts at
// addr = col·rowBytes, so the row's lines are numbers r·L+j for j in [0,L).
// With power-of-two set counts that are multiples of L, the set index
// (r·L+j) & mask = ((r·L) & mask) | j — class j occupies its own disjoint
// group of sets, in every level of the hierarchy. Across rows, class j sees
// the access sequence r₁,r₂,… — the same sequence for every j, and LRU
// decisions depend only on the relative order of accesses within a set (the
// shared clock is monotone), so all L classes replay identical hit/miss and
// victim sequences. Misses filter identically into the shared level, where
// the same disjointness holds. One class therefore stands in for all L.
//
// Returns 1 (no folding) whenever any condition fails: non-power-of-two
// geometry anywhere, mismatched line sizes, or rowBytes not a power-of-two
// multiple of the line size.
func dinFoldFactor(private, shared *cache, rowBytes int) int {
	lineSize := 0
	for _, c := range [2]*cache{private, shared} {
		if c == nil {
			continue
		}
		if c.lineShift < 0 || !c.setPow2 {
			return 1
		}
		if lineSize == 0 {
			lineSize = c.lineSize
		} else if c.lineSize != lineSize {
			return 1
		}
	}
	if lineSize <= 0 || rowBytes <= 0 || rowBytes%lineSize != 0 {
		return 1
	}
	l := rowBytes / lineSize
	if l <= 1 || l&(l-1) != 0 {
		return 1
	}
	for _, c := range [2]*cache{private, shared} {
		if c != nil && c.sets%l != 0 {
			return 1
		}
	}
	return l
}

// missThrough touches [addr, addr+n) through a two-level hierarchy: lines
// that miss in the private cache probe the shared level, and only lines
// missing in both are charged to main memory. Either level may be nil.
func missThrough(private, shared *cache, addr uint64, n int) int {
	if private == nil && shared == nil {
		return n
	}
	if shared == nil {
		return private.accessRange(addr, n)
	}
	if private == nil {
		return shared.accessRange(addr, n)
	}
	missed := 0
	first := private.lineOf(addr)
	last := private.lineOf(addr + uint64(n) - 1)
	for line := first; line <= last; line++ {
		if private.accessLine(line) {
			continue
		}
		if !shared.access(line * uint64(private.lineSize)) {
			missed += private.lineSize
		}
	}
	return missed
}

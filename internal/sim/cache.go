// Package sim is the heterogeneous-accelerator simulator substituting for
// the paper's SST+DRAMSim3 and Sniper-based PIUMA simulators (§VII-A,
// DESIGN.md §2). It is a fluid event-driven model: each worker advances
// through work units (tiles for the hot streamers, row chunks for the cold
// workers) whose compute-cycle and memory-byte demands are derived from the
// simulated microarchitecture — including the per-PE caches whose reuse the
// analytical model deliberately ignores. Memory bandwidth is a shared
// resource allocated max-min fairly among active workers. The simulator
// also executes SpMM functionally so every run is checked against the
// reference kernel.
package sim

// cache is a set-associative LRU cache model used for the cold workers'
// Din accesses (SPADE's per-PE L1, PIUMA's MTP cache). The sparse input and
// Dout bypass it (SPADE's BBF / PIUMA's streaming engines).
type cache struct {
	sets     int
	ways     int
	lineSize int
	// Fast-geometry fields: when the line size (resp. set count) is a power
	// of two — the overwhelmingly common configuration — address-to-line
	// and line-to-set mapping use a shift (resp. mask) instead of integer
	// division, which sits on the cold-pool construction hot path (one
	// probe per nonzero per dense row line). The mapping is identical to
	// the division it replaces.
	lineShift int // log2(lineSize); -1 when lineSize is not a power of two
	setMask   uint64
	setPow2   bool
	// tags[set*ways+way] holds the line address + 1 (0 = invalid).
	tags []uint64
	// lru[set*ways+way] is the last-use stamp.
	lru   []uint64
	clock uint64
}

// newCache builds a cache of the given total capacity; returns nil when the
// capacity is zero (cache disabled).
func newCache(capacityBytes, lineSize int) *cache {
	if capacityBytes <= 0 || lineSize <= 0 {
		return nil
	}
	const ways = 8
	lines := capacityBytes / lineSize
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	c := &cache{
		sets:      sets,
		ways:      ways,
		lineSize:  lineSize,
		lineShift: -1,
		tags:      make([]uint64, sets*ways),
		lru:       make([]uint64, sets*ways),
	}
	if lineSize&(lineSize-1) == 0 {
		for s := lineSize; s > 1; s >>= 1 {
			c.lineShift++
		}
		c.lineShift++
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint64(sets - 1)
		c.setPow2 = true
	}
	return c
}

// lineOf maps a byte address to its line number.
func (c *cache) lineOf(addr uint64) uint64 {
	if c.lineShift >= 0 {
		return addr >> uint(c.lineShift)
	}
	return addr / uint64(c.lineSize)
}

// accessLine touches line (a line number, not a byte address) and reports
// whether it hit.
func (c *cache) accessLine(line uint64) bool {
	var set int
	if c.setPow2 {
		set = int(line & c.setMask)
	} else {
		set = int(line % uint64(c.sets))
	}
	base := set * c.ways
	c.clock++
	tag := line + 1
	victim, oldest := base, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.lru[i] = c.clock
			return true
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.clock
	return false
}

// access touches the line containing byte address addr and reports whether
// it hit.
func (c *cache) access(addr uint64) bool {
	return c.accessLine(c.lineOf(addr))
}

// accessRange touches every line of [addr, addr+n) and returns the number
// of bytes that missed (whole missing lines).
func (c *cache) accessRange(addr uint64, n int) int {
	if c == nil {
		return n
	}
	missed := 0
	first := c.lineOf(addr)
	last := c.lineOf(addr + uint64(n) - 1)
	for line := first; line <= last; line++ {
		if !c.accessLine(line) {
			missed += c.lineSize
		}
	}
	return missed
}

// missThrough touches [addr, addr+n) through a two-level hierarchy: lines
// that miss in the private cache probe the shared level, and only lines
// missing in both are charged to main memory. Either level may be nil.
func missThrough(private, shared *cache, addr uint64, n int) int {
	if private == nil && shared == nil {
		return n
	}
	if shared == nil {
		return private.accessRange(addr, n)
	}
	if private == nil {
		return shared.accessRange(addr, n)
	}
	missed := 0
	first := private.lineOf(addr)
	last := private.lineOf(addr + uint64(n) - 1)
	for line := first; line <= last; line++ {
		if private.accessLine(line) {
			continue
		}
		if !shared.access(line * uint64(private.lineSize)) {
			missed += private.lineSize
		}
	}
	return missed
}

package sim

import (
	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/semiring"
	"repro/internal/tile"
)

// Options configures a simulation run.
type Options struct {
	// Serial runs the cold pool to completion before the hot pool on a
	// shared output buffer (no merge); the default is parallel pools with
	// private buffers merged at the end (unless the architecture's atomic
	// engine removes the merge).
	Serial bool
	// Semiring selects the gSpMM algebra; the zero value means plain
	// arithmetic SpMM.
	Semiring *semiring.Semiring
	// SkipFunctional disables the functional execution (timing only), for
	// large parameter sweeps where the numeric output is not inspected.
	SkipFunctional bool
	// Kernel selects SpMM (zero value), SpMV (K = 1) or SDDMM.
	Kernel model.Kernel
	// Trace records the bandwidth timeline into Result.Trace.
	Trace bool
	// Timeline, when non-nil, records per-worker events (unit slices on the
	// simulated clock, idle instants, bandwidth-grant samples) onto the
	// timeline. TimelineLabel prefixes the per-worker track names so a sweep
	// keeps its runs apart. Independently, when obs.DeepTiming is on the run
	// feeds the sim.step.dt.ns histogram even without a timeline.
	Timeline      *obs.Timeline
	TimelineLabel string
	// Units, when non-nil, memoizes built unit pools across runs keyed on
	// (grid, assignment, pool geometry) — see UnitCache. Sweeps that
	// revisit a combination skip unit construction on the repeat runs.
	Units *UnitCache
}

// Result reports one simulated execution.
type Result struct {
	// Time is the end-to-end simulated runtime in seconds, including the
	// merge when one happens.
	Time float64
	// MergeTime is the Merger module's share of Time (zero for serial
	// execution, atomic-RMW architectures, and homogeneous runs).
	MergeTime float64

	// HotElapsed/ColdElapsed are each pool's busy span (start until its
	// last unit drained).
	HotElapsed, ColdElapsed float64
	// HotBytes/ColdBytes are main-memory bytes moved by each pool.
	HotBytes, ColdBytes float64
	// HotFlops/ColdFlops are the arithmetic operations each pool executed.
	HotFlops, ColdFlops float64

	// Output is the functional SpMM/SpMV result (nil when SkipFunctional or
	// for SDDMM).
	Output *dense.Matrix
	// SDDMM is the functional SDDMM result: one value per nonzero, aligned
	// with the grid's tile-ordered nonzero arrays (nil for other kernels).
	SDDMM []float64
	// Trace is the bandwidth timeline (only with Options.Trace). Pool 0 is
	// the cold pool, pool 1 the hot pool; for serial runs the hot segment
	// is appended after the cold one with shifted timestamps.
	Trace []TracePoint

	mergeBytes float64
}

// TotalBytes returns the run's total main-memory traffic, including the
// merger's.
func (r *Result) TotalBytes() float64 { return r.HotBytes + r.ColdBytes + r.mergeBytes }

// BandwidthUtil returns the average consumed bandwidth in bytes/s.
func (r *Result) BandwidthUtil() float64 {
	if r.Time <= 0 {
		return 0
	}
	return r.TotalBytes() / r.Time
}

// CacheLinesPerNNZ returns main-memory lines fetched per nonzero (the
// Table VII statistic) for a 64-byte line.
func (r *Result) CacheLinesPerNNZ(nnz int) float64 {
	if nnz == 0 {
		return 0
	}
	return r.TotalBytes() / 64 / float64(nnz)
}

// HotGFLOPs returns the hot pool's achieved GFLOP/s over its busy span.
func (r *Result) HotGFLOPs() float64 {
	if r.HotElapsed <= 0 {
		return 0
	}
	return r.HotFlops / r.HotElapsed / 1e9
}

// ColdGFLOPs returns the cold pool's achieved GFLOP/s over its busy span.
func (r *Result) ColdGFLOPs() float64 {
	if r.ColdElapsed <= 0 {
		return 0
	}
	return r.ColdFlops / r.ColdElapsed / 1e9
}

// Run simulates executing the partitioned SpMM on architecture a: the hot
// tiles on the hot pool (tiled traversal) and the rest on the cold pool
// (untiled chunked traversal), sharing the architecture's memory bandwidth.
// din must be N×K. The semiring's OpsPerMAC drives both the timing and the
// functional execution.
//
// Run draws a Runner from the package free list, so repeated calls — the
// sweep shape — reuse pool, cache-model, and engine scratch instead of
// reconstructing state per run. Results are bit-identical to a fresh
// construction (see Runner).
func Run(g *tile.Grid, hot []bool, a *arch.Arch, din *dense.Matrix, opts Options) (*Result, error) {
	r := acquireRunner()
	defer releaseRunner(r)
	res := &Result{}
	if err := r.RunInto(res, g, hot, a, din, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// executeSDDMM computes the sampled dense-dense product functionally: both
// factor matrices are din (U = V), matching the common attention/embedding
// use; values align with the grid's tile-ordered nonzeros. The loop splits
// over the par pool on tile-ordered nnz ranges — every nonzero writes only
// its own output slot, so the split is bit-identical to the serial loop.
func executeSDDMM(g *tile.Grid, din *dense.Matrix) []float64 {
	out := make([]float64, g.NNZ())
	par.Chunks(len(g.Vals), func(lo, hi int) {
		sddmmRange(g, din, out, lo, hi)
	})
	return out
}

// sddmmRange is the SDDMM inner loop over the grid's tile-ordered nonzero
// range [lo, hi).
//
//hot:path
func sddmmRange(g *tile.Grid, din *dense.Matrix, out []float64, lo, hi int) {
	k := din.K
	for i := lo; i < hi; i++ {
		ur := din.Data[int(g.Rows[i])*k : int(g.Rows[i])*k+k]
		vc := din.Data[int(g.Cols[i])*k : int(g.Cols[i])*k+k]
		dot := 0.0
		for j := 0; j < k; j++ {
			dot += ur[j] * vc[j]
		}
		out[i] = g.Vals[i] * dot
	}
}

// execute performs the functional gSpMM: cold section in untiled row order,
// hot section in tiled panel order, accumulated into per-pool buffers that
// are merged with the semiring's additive monoid.
//
// The tile loop fans out over the par pool one row panel at a time. Panels
// are row-disjoint (panel tr covers rows [tr·TileH, (tr+1)·TileH)) and each
// panel walks its tiles in the serial (TR, TC) order, so every output row —
// in both buffers — accumulates in exactly the serial floating-point order:
// the result is bit-identical for any worker count, and the per-element
// GMerge below is order-independent anyway.
func execute(g *tile.Grid, hot []bool, din *dense.Matrix, sr semiring.Semiring) (*dense.Matrix, error) {
	k := din.K
	coldBuf := dense.NewFilled(g.N, k, sr.AddIdentity)
	hotBuf := dense.NewFilled(g.N, k, sr.AddIdentity)
	par.ForEach(g.NumTR, func(tr int) {
		for i := g.PanelStart[tr]; i < g.PanelStart[tr+1]; i++ {
			buf := coldBuf
			if hot[i] {
				buf = hotBuf
			}
			rows, cols, vals := g.TileNonzeros(i)
			executeTile(rows, cols, vals, din, buf, sr)
		}
	})
	if err := dense.GMerge(coldBuf, hotBuf, sr); err != nil {
		return nil, err
	}
	return coldBuf, nil
}

// executeTile accumulates one tile's nonzeros into its pool buffer.
//
//hot:path
func executeTile(rows, cols []int32, vals []float64, din, buf *dense.Matrix, sr semiring.Semiring) {
	k := din.K
	for j := range rows {
		in := din.Data[int(cols[j])*k : int(cols[j])*k+k]
		out := buf.Data[int(rows[j])*k : int(rows[j])*k+k]
		for x := 0; x < k; x++ {
			out[x] = sr.Add(out[x], sr.Mul(vals[j], in[x]))
		}
	}
}

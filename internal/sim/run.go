package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/semiring"
	"repro/internal/tile"
)

// Options configures a simulation run.
type Options struct {
	// Serial runs the cold pool to completion before the hot pool on a
	// shared output buffer (no merge); the default is parallel pools with
	// private buffers merged at the end (unless the architecture's atomic
	// engine removes the merge).
	Serial bool
	// Semiring selects the gSpMM algebra; the zero value means plain
	// arithmetic SpMM.
	Semiring *semiring.Semiring
	// SkipFunctional disables the functional execution (timing only), for
	// large parameter sweeps where the numeric output is not inspected.
	SkipFunctional bool
	// Kernel selects SpMM (zero value), SpMV (K = 1) or SDDMM.
	Kernel model.Kernel
	// Trace records the bandwidth timeline into Result.Trace.
	Trace bool
	// Timeline, when non-nil, records per-worker events (unit slices on the
	// simulated clock, idle instants, bandwidth-grant samples) onto the
	// timeline. TimelineLabel prefixes the per-worker track names so a sweep
	// keeps its runs apart. Independently, when obs.DeepTiming is on the run
	// feeds the sim.step.dt.ns histogram even without a timeline.
	Timeline      *obs.Timeline
	TimelineLabel string
}

// Result reports one simulated execution.
type Result struct {
	// Time is the end-to-end simulated runtime in seconds, including the
	// merge when one happens.
	Time float64
	// MergeTime is the Merger module's share of Time (zero for serial
	// execution, atomic-RMW architectures, and homogeneous runs).
	MergeTime float64

	// HotElapsed/ColdElapsed are each pool's busy span (start until its
	// last unit drained).
	HotElapsed, ColdElapsed float64
	// HotBytes/ColdBytes are main-memory bytes moved by each pool.
	HotBytes, ColdBytes float64
	// HotFlops/ColdFlops are the arithmetic operations each pool executed.
	HotFlops, ColdFlops float64

	// Output is the functional SpMM/SpMV result (nil when SkipFunctional or
	// for SDDMM).
	Output *dense.Matrix
	// SDDMM is the functional SDDMM result: one value per nonzero, aligned
	// with the grid's tile-ordered nonzero arrays (nil for other kernels).
	SDDMM []float64
	// Trace is the bandwidth timeline (only with Options.Trace). Pool 0 is
	// the cold pool, pool 1 the hot pool; for serial runs the hot segment
	// is appended after the cold one with shifted timestamps.
	Trace []TracePoint

	mergeBytes float64
}

// TotalBytes returns the run's total main-memory traffic, including the
// merger's.
func (r *Result) TotalBytes() float64 { return r.HotBytes + r.ColdBytes + r.mergeBytes }

// BandwidthUtil returns the average consumed bandwidth in bytes/s.
func (r *Result) BandwidthUtil() float64 {
	if r.Time <= 0 {
		return 0
	}
	return r.TotalBytes() / r.Time
}

// CacheLinesPerNNZ returns main-memory lines fetched per nonzero (the
// Table VII statistic) for a 64-byte line.
func (r *Result) CacheLinesPerNNZ(nnz int) float64 {
	if nnz == 0 {
		return 0
	}
	return r.TotalBytes() / 64 / float64(nnz)
}

// HotGFLOPs returns the hot pool's achieved GFLOP/s over its busy span.
func (r *Result) HotGFLOPs() float64 {
	if r.HotElapsed <= 0 {
		return 0
	}
	return r.HotFlops / r.HotElapsed / 1e9
}

// ColdGFLOPs returns the cold pool's achieved GFLOP/s over its busy span.
func (r *Result) ColdGFLOPs() float64 {
	if r.ColdElapsed <= 0 {
		return 0
	}
	return r.ColdFlops / r.ColdElapsed / 1e9
}

// Run simulates executing the partitioned SpMM on architecture a: the hot
// tiles on the hot pool (tiled traversal) and the rest on the cold pool
// (untiled chunked traversal), sharing the architecture's memory bandwidth.
// din must be N×K. The semiring's OpsPerMAC drives both the timing and the
// functional execution.
func Run(g *tile.Grid, hot []bool, a *arch.Arch, din *dense.Matrix, opts Options) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if len(hot) != len(g.Tiles) {
		return nil, fmt.Errorf("sim: assignment length %d, want %d", len(hot), len(g.Tiles))
	}
	sr := semiring.PlusTimes()
	if opts.Semiring != nil {
		sr = *opts.Semiring
	}
	prm := model.Params{K: a.K, OpsPerMAC: sr.OpsPerMAC, Kernel: opts.Kernel}
	if opts.Kernel == model.KernelSpMV {
		prm.K = 1
	}
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if !opts.SkipFunctional {
		if din == nil || din.N != g.N || din.K != prm.K {
			return nil, fmt.Errorf("sim: Din must be %dx%d", g.N, prm.K)
		}
	}

	anyHot, anyCold := false, false
	for _, h := range hot {
		if h {
			anyHot = true
		} else {
			anyCold = true
		}
	}
	if anyHot && a.Hot.Count <= 0 {
		return nil, fmt.Errorf("sim: hot tiles assigned but architecture %s has no hot workers", a.Name)
	}
	if anyCold && a.Cold.Count <= 0 {
		return nil, fmt.Errorf("sim: cold tiles assigned but architecture %s has no cold workers", a.Name)
	}

	hotPool := buildHotPool(g, hot, a, prm)
	coldPool := buildColdPool(g, hot, a, prm)

	res := &Result{}
	var trCold, trHot, trBoth *tracer
	if opts.Trace {
		trCold, trHot, trBoth = &tracer{}, &tracer{}, &tracer{}
	}
	deepOn := opts.Timeline != nil || obs.DeepTiming()
	if opts.Serial {
		// Cold pool first, then hot, each with the full memory system.
		var dCold, dHot *engineDeep
		if deepOn {
			dCold = newEngineDeep(opts.Timeline, opts.TimelineLabel, []*pool{coldPool})
		}
		tCold, sCold, err := runEngineObserved([]*pool{coldPool}, a.BWBytes, trCold, dCold)
		if err != nil {
			return nil, err
		}
		if deepOn {
			// The hot leg starts where the cold leg ended on the shared
			// serial clock.
			dHot = newEngineDeep(opts.Timeline, opts.TimelineLabel, []*pool{hotPool})
			dHot.baseNS = simNS(tCold)
		}
		tHot, sHot, err := runEngineObserved([]*pool{hotPool}, a.BWBytes, trHot, dHot)
		if err != nil {
			return nil, err
		}
		res.Time = tCold + tHot
		res.ColdElapsed, res.HotElapsed = sCold[0].Elapsed, sHot[0].Elapsed
		res.ColdBytes, res.HotBytes = sCold[0].Bytes, sHot[0].Bytes
		res.ColdFlops, res.HotFlops = sCold[0].Flops, sHot[0].Flops
		if opts.Trace {
			res.Trace = append(res.Trace, trCold.points...)
			for _, pt := range trHot.points {
				pt.T += tCold
				// Relabel the single serial-hot pool as pool index 1.
				pt.PoolBW = []float64{0, pt.PoolBW[0]}
				res.Trace = append(res.Trace, pt)
			}
			for i := range res.Trace[:len(trCold.points)] {
				res.Trace[i].PoolBW = append(res.Trace[i].PoolBW, 0)
			}
		}
	} else {
		var dBoth *engineDeep
		if deepOn {
			dBoth = newEngineDeep(opts.Timeline, opts.TimelineLabel, []*pool{coldPool, hotPool})
		}
		t, stats, err := runEngineObserved([]*pool{coldPool, hotPool}, a.BWBytes, trBoth, dBoth)
		if err != nil {
			return nil, err
		}
		if opts.Trace {
			res.Trace = trBoth.points
		}
		res.Time = t
		res.ColdElapsed, res.HotElapsed = stats[0].Elapsed, stats[1].Elapsed
		res.ColdBytes, res.HotBytes = stats[0].Bytes, stats[1].Bytes
		res.ColdFlops, res.HotFlops = stats[0].Flops, stats[1].Flops
		if anyHot && anyCold && !a.AtomicRMW && opts.Kernel != model.KernelSDDMM {
			// SDDMM outputs are disjoint per nonzero, so no merge is needed
			// even with private buffers.
			res.mergeBytes = 3 * float64(g.N) * float64(prm.K) * float64(a.Hot.ElemBytes)
			res.MergeTime = res.mergeBytes / a.BWBytes
			res.Time += res.MergeTime
		}
	}

	if !opts.SkipFunctional {
		if opts.Kernel == model.KernelSDDMM {
			res.SDDMM = executeSDDMM(g, din)
		} else {
			out, err := execute(g, hot, din, sr)
			if err != nil {
				return nil, err
			}
			res.Output = out
		}
	}
	return res, nil
}

// executeSDDMM computes the sampled dense-dense product functionally: both
// factor matrices are din (U = V), matching the common attention/embedding
// use; values align with the grid's tile-ordered nonzeros.
func executeSDDMM(g *tile.Grid, din *dense.Matrix) []float64 {
	out := make([]float64, g.NNZ())
	k := din.K
	for i := range g.Vals {
		ur := din.Data[int(g.Rows[i])*k : int(g.Rows[i])*k+k]
		vc := din.Data[int(g.Cols[i])*k : int(g.Cols[i])*k+k]
		dot := 0.0
		for j := 0; j < k; j++ {
			dot += ur[j] * vc[j]
		}
		out[i] = g.Vals[i] * dot
	}
	return out
}

// execute performs the functional gSpMM: cold section in untiled row order,
// hot section in tiled panel order, accumulated into per-pool buffers that
// are merged with the semiring's additive monoid.
func execute(g *tile.Grid, hot []bool, din *dense.Matrix, sr semiring.Semiring) (*dense.Matrix, error) {
	k := din.K
	coldBuf := dense.NewFilled(g.N, k, sr.AddIdentity)
	hotBuf := dense.NewFilled(g.N, k, sr.AddIdentity)
	for i := range g.Tiles {
		buf := coldBuf
		if hot[i] {
			buf = hotBuf
		}
		rows, cols, vals := g.TileNonzeros(i)
		for j := range rows {
			in := din.Row(int(cols[j]))
			out := buf.Row(int(rows[j]))
			for x := 0; x < k; x++ {
				out[x] = sr.Add(out[x], sr.Mul(vals[j], in[x]))
			}
		}
	}
	if err := dense.GMerge(coldBuf, hotBuf, sr); err != nil {
		return nil, err
	}
	return coldBuf, nil
}

package sim

import (
	"math"
	"testing"
)

// claimEngine builds an engine whose workers each demand the given bytes
// (one single-phase unit per worker) and runs one allocation round.
func claimEngine(t *testing.T, p *pool, bytes []float64, totalBW float64) *engine {
	t.Helper()
	for _, b := range bytes {
		p.units = append(p.units, unitOf(0, phase{bytes: b}))
	}
	e, err := newEngine([]*pool{p}, totalBW)
	if err != nil {
		t.Fatal(err)
	}
	e.allocate()
	return e
}

func TestAllocateLinkSlackRedistributed(t *testing.T) {
	// Two workers behind a 100 GB/s link: one can only stream 10 GB/s, the
	// other 200 GB/s. The pool's demand (210) exceeds the link, but the slow
	// worker's slack must flow to the fast one — grants 10 + 90, not an even
	// 50 + 50 split of the link that over-grants the slow worker and
	// strands 40 GB/s of link capacity.
	p := &pool{
		name: "mixed", workers: 2,
		perWorkerBW: 200e9,
		workerBW:    []float64{10e9, 200e9},
		linkBW:      100e9,
	}
	e := claimEngine(t, p, []float64{1e9, 1e9}, 1e12)
	if math.Abs(e.workers[0].grant-10e9) > 1 || math.Abs(e.workers[1].grant-90e9) > 1 {
		t.Fatalf("grants = %g, %g; want 10e9, 90e9", e.workers[0].grant, e.workers[1].grant)
	}
}

func TestAllocateUniformLinkCapPreserved(t *testing.T) {
	// Identical workers behind a saturated link still split it evenly, and
	// the share must be exactly linkBW/count (the pre-waterfill behavior).
	p := &pool{name: "pcie", workers: 2, perWorkerBW: 50e9, linkBW: 10e9}
	e := claimEngine(t, p, []float64{1e9, 1e9}, 100e9)
	want := p.linkBW / 2
	if e.workers[0].grant != want || e.workers[1].grant != want {
		t.Fatalf("grants = %g, %g; want exactly %g each", e.workers[0].grant, e.workers[1].grant, want)
	}
}

func TestAllocateWorkerCapFallback(t *testing.T) {
	// Entries missing from workerBW (or non-positive) fall back to the
	// pool-wide perWorkerBW.
	p := &pool{name: "p", workers: 3, perWorkerBW: 30e9, workerBW: []float64{10e9, 0}}
	if got := p.workerCap(0); got != 10e9 {
		t.Fatalf("workerCap(0) = %g, want 10e9", got)
	}
	if got := p.workerCap(1); got != 30e9 {
		t.Fatalf("workerCap(1) = %g, want fallback 30e9", got)
	}
	if got := p.workerCap(2); got != 30e9 {
		t.Fatalf("workerCap(2) = %g, want fallback 30e9", got)
	}
}

func TestEngineMixedSpeedPoolSaturatesLink(t *testing.T) {
	// End to end: the mixed pool of TestAllocateLinkSlackRedistributed
	// moves 1 GB on the slow worker and 9 GB on the fast one. With the
	// slack redistributed both finish at 0.1 s; the old even split would
	// stall the fast worker at 50 GB/s (0.18 s makespan).
	p := &pool{
		name: "mixed", workers: 2,
		perWorkerBW: 200e9,
		workerBW:    []float64{10e9, 200e9},
		linkBW:      100e9,
	}
	p.units = []unit{
		unitOf(0, phase{bytes: 1e9}),
		unitOf(0, phase{bytes: 9e9}),
	}
	tm, _, err := runEngine([]*pool{p}, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-0.1) > 1e-4 {
		t.Fatalf("time = %g, want ~0.1", tm)
	}
}

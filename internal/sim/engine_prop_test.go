package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPools builds a random but well-formed workload.
func randomPools(rng *rand.Rand) []*pool {
	npools := 1 + rng.Intn(3)
	pools := make([]*pool, npools)
	for p := range pools {
		pl := &pool{
			name:        "p",
			workers:     1 + rng.Intn(4),
			perWorkerBW: (1 + rng.Float64()*20) * 1e9,
		}
		if rng.Intn(3) == 0 {
			pl.linkBW = (1 + rng.Float64()*10) * 1e9
		}
		for u := 0; u < rng.Intn(12); u++ {
			un := unit{flops: rng.Float64() * 1e6}
			for ph := 0; ph < 1+rng.Intn(3); ph++ {
				un.addPhase(phase{
					compute: rng.Float64() * 1e-4,
					bytes:   rng.Float64() * 1e6,
				})
			}
			pl.units = append(pl.units, un)
		}
		pools[p] = pl
	}
	return pools
}

// TestEngineConservationProperty: the engine moves exactly the bytes its
// units demand, counts exactly their flops, and never finishes faster than
// physics allows (total bytes over system bandwidth; the largest single
// unit's compute).
func TestEngineConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pools := randomPools(rng)
		totalBW := (10 + rng.Float64()*90) * 1e9

		wantBytes := make([]float64, len(pools))
		wantFlops := make([]float64, len(pools))
		sumBytes := 0.0
		maxUnitTime := 0.0
		for p, pl := range pools {
			for _, u := range pl.units {
				wantFlops[p] += u.flops
				unitC := 0.0
				for _, ph := range u.ph[:u.nph] {
					wantBytes[p] += ph.bytes
					unitC += ph.compute
				}
				if unitC > maxUnitTime {
					maxUnitTime = unitC
				}
			}
			sumBytes += wantBytes[p]
		}

		tm, stats, err := runEngine(pools, totalBW)
		if err != nil {
			return false
		}
		for p := range pools {
			if math.Abs(stats[p].Bytes-wantBytes[p]) > 1e-3*(1+wantBytes[p]) {
				return false
			}
			if stats[p].Flops != wantFlops[p] {
				return false
			}
			if stats[p].Elapsed > tm+1e-12 {
				return false
			}
		}
		// Physical lower bounds.
		if tm+1e-9 < sumBytes/totalBW {
			return false
		}
		if tm+1e-12 < maxUnitTime {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineMonotoneInBandwidth: more system bandwidth can never make the
// makespan longer.
func TestEngineMonotoneInBandwidth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []*pool {
			r2 := rand.New(rand.NewSource(seed))
			return randomPools(r2)
		}
		_ = rng
		slow, _, err1 := runEngine(mk(), 20e9)
		fast, _, err2 := runEngine(mk(), 200e9)
		if err1 != nil || err2 != nil {
			return false
		}
		return fast <= slow+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineWorkersSpeedScaling: doubling the workers of a purely
// compute-bound pool roughly halves its makespan.
func TestEngineWorkersSpeedScaling(t *testing.T) {
	mk := func(workers int) *pool {
		p := &pool{name: "p", workers: workers, perWorkerBW: math.Inf(1)}
		for i := 0; i < 32; i++ {
			u := unit{}
			u.addPhase(phase{compute: 1e-3})
			p.units = append(p.units, u)
		}
		return p
	}
	t1, _, err := runEngine([]*pool{mk(1)}, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	t4, _, err := runEngine([]*pool{mk(4)}, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1/t4-4) > 1e-6 {
		t.Fatalf("scaling: 1 worker %.4g vs 4 workers %.4g (ratio %.3f)", t1, t4, t1/t4)
	}
}

package sim

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/partition"
	"repro/internal/semiring"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// testSetup builds a matrix with IMH (dense block + sparse background), a
// grid, and a HotTiles partitioning for the given architecture.
func testSetup(t testing.TB, a *arch.Arch, seed int64) (*tile.Grid, *partition.Result, *sparse.COO) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 8 * a.TileH
	m := sparse.NewCOO(n, 0)
	blockN := a.TileH
	for i := 0; i < 40*blockN; i++ {
		m.Append(int32(rng.Intn(blockN)), int32(rng.Intn(blockN)), rng.Float64()+0.5)
	}
	for i := 0; i < 2*n; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64()+0.5)
	}
	m.SortRowMajor()
	m.DedupSum()
	g, err := tile.Partition(m, a.TileH, a.TileW)
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Config(2)
	res, err := partition.HotTiles(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, &res, m
}

func scaledArch(base arch.Arch, tileSize int) arch.Arch {
	base.TileH, base.TileW = tileSize, tileSize
	return base
}

func TestRunFunctionalMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    arch.Arch
	}{
		{"SPADE-Sextans", scaledArch(arch.SpadeSextans(4), 64)},
		{"PIUMA", scaledArch(arch.PIUMA(), 64)},
		{"SPADE-Sextans+PCIe", scaledArch(arch.SpadeSextansPCIe(), 64)},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g, res, m := testSetup(t, &tc.a, 1)
			rng := rand.New(rand.NewSource(2))
			din := dense.NewRandom(rng, m.N, tc.a.K)
			r, err := Run(g, res.Hot, &tc.a, din, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := dense.NewMatrix(m.N, tc.a.K)
			if err := dense.SpMM(m, din, want); err != nil {
				t.Fatal(err)
			}
			if !r.Output.AlmostEqual(want, 1e-9) {
				d, _ := r.Output.MaxAbsDiff(want)
				t.Fatalf("simulated output differs from reference by %g", d)
			}
			if r.Time <= 0 {
				t.Fatal("non-positive simulated time")
			}
		})
	}
}

func TestRunSerialVsParallel(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, m := testSetup(t, &a, 3)
	din := dense.NewRandom(rand.New(rand.NewSource(4)), m.N, a.K)

	par, err := Run(g, res.Hot, &a, din, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := Run(g, res.Hot, &a, din, Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	// Functional results agree regardless of execution mode.
	if !par.Output.AlmostEqual(ser.Output, 1e-9) {
		t.Fatal("serial and parallel outputs differ")
	}
	// Serial pays no merge; parallel heterogeneous on SPADE-Sextans does.
	if ser.MergeTime != 0 {
		t.Fatal("serial run charged a merge")
	}
	anyHot := false
	for _, h := range res.Hot {
		anyHot = anyHot || h
	}
	if anyHot && par.MergeTime <= 0 {
		t.Fatal("parallel heterogeneous run did not charge a merge")
	}
	// Per-pool traffic must not depend on the mode.
	if abs(par.HotBytes-ser.HotBytes) > 1 || abs(par.ColdBytes-ser.ColdBytes) > 1 {
		t.Fatalf("traffic differs across modes: %+v vs %+v", par, ser)
	}
}

func TestRunPIUMANoMerge(t *testing.T) {
	a := scaledArch(arch.PIUMA(), 64)
	g, res, m := testSetup(t, &a, 5)
	din := dense.NewRandom(rand.New(rand.NewSource(6)), m.N, a.K)
	r, err := Run(g, res.Hot, &a, din, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MergeTime != 0 {
		t.Fatal("PIUMA's atomic engine removes the merge")
	}
}

func TestRunHomogeneousNoMerge(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, _, m := testSetup(t, &a, 7)
	din := dense.NewRandom(rand.New(rand.NewSource(8)), m.N, a.K)
	for _, hot := range [][]bool{partition.AllCold(g), partition.AllHot(g)} {
		r, err := Run(g, hot, &a, din, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.MergeTime != 0 {
			t.Fatal("homogeneous run charged a merge")
		}
	}
}

func TestRunHotOnlySlowerOnSparseMatrix(t *testing.T) {
	// The paper's headline observation (Figs 10/11): for sparse matrices,
	// streaming full dense tiles makes HotOnly far slower than ColdOnly.
	a := scaledArch(arch.SpadeSextans(4), 64)
	rng := rand.New(rand.NewSource(9))
	n := 16 * a.TileH
	m := sparse.NewCOO(n, 4*n)
	for i := 0; i < 4*n; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
	}
	m.SortRowMajor()
	m.DedupSum()
	g, err := tile.Partition(m, a.TileH, a.TileW)
	if err != nil {
		t.Fatal(err)
	}
	hotOnly, err := Run(g, partition.AllHot(g), &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	coldOnly, err := Run(g, partition.AllCold(g), &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if hotOnly.Time < 3*coldOnly.Time {
		t.Fatalf("HotOnly %.3e should be ≫ ColdOnly %.3e on a sparse matrix",
			hotOnly.Time, coldOnly.Time)
	}
}

func TestRunHotOnlyFasterOnDenseMatrix(t *testing.T) {
	// ... and the reverse for dense matrices (the paper's myc case).
	a := scaledArch(arch.SpadeSextans(4), 64)
	rng := rand.New(rand.NewSource(10))
	n := 4 * a.TileH
	m := sparse.NewCOO(n, 0)
	for i := 0; i < 60*n; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
	}
	m.SortRowMajor()
	m.DedupSum()
	g, err := tile.Partition(m, a.TileH, a.TileW)
	if err != nil {
		t.Fatal(err)
	}
	hotOnly, err := Run(g, partition.AllHot(g), &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	coldOnly, err := Run(g, partition.AllCold(g), &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if hotOnly.Time >= coldOnly.Time {
		t.Fatalf("HotOnly %.3e should beat ColdOnly %.3e on a dense matrix",
			hotOnly.Time, coldOnly.Time)
	}
}

func TestRunGSpMMSemiring(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, m := testSetup(t, &a, 11)
	din := dense.NewRandom(rand.New(rand.NewSource(12)), m.N, a.K)
	sr := semiring.Scaled(semiring.PlusTimes(), 8)
	r, err := Run(g, res.Hot, &a, din, Options{Semiring: &sr})
	if err != nil {
		t.Fatal(err)
	}
	want := dense.NewMatrix(m.N, a.K)
	if err := dense.SpMM(m, din, want); err != nil {
		t.Fatal(err)
	}
	if !r.Output.AlmostEqual(want, 1e-9) {
		t.Fatal("scaled semiring changed the numeric result")
	}
	// Heavier semirings must take at least as long.
	plain, err := Run(g, res.Hot, &a, din, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Time < plain.Time {
		t.Fatalf("AI-8 run (%.3e) faster than plain (%.3e)", r.Time, plain.Time)
	}
}

func TestRunStats(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, m := testSetup(t, &a, 13)
	r, err := Run(g, res.Hot, &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalBytes() <= 0 || r.BandwidthUtil() <= 0 {
		t.Fatal("no traffic recorded")
	}
	if r.BandwidthUtil() > a.BWBytes*1.0001 {
		t.Fatalf("utilization %.3g exceeds system bandwidth %.3g", r.BandwidthUtil(), a.BWBytes)
	}
	if r.CacheLinesPerNNZ(m.NNZ()) <= 0 {
		t.Fatal("no lines per nonzero")
	}
	if r.CacheLinesPerNNZ(0) != 0 {
		t.Fatal("zero nnz should report 0")
	}
	hotAny := false
	for _, h := range res.Hot {
		hotAny = hotAny || h
	}
	if hotAny && (r.HotGFLOPs() <= 0 || r.ColdGFLOPs() <= 0) {
		t.Fatalf("pool GFLOP/s: hot %g cold %g", r.HotGFLOPs(), r.ColdGFLOPs())
	}
	empty := &Result{}
	if empty.HotGFLOPs() != 0 || empty.ColdGFLOPs() != 0 || empty.BandwidthUtil() != 0 {
		t.Fatal("empty result stats should be zero")
	}
}

func TestRunValidation(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, m := testSetup(t, &a, 14)
	din := dense.NewRandom(rand.New(rand.NewSource(15)), m.N, a.K)

	if _, err := Run(g, res.Hot[:1], &a, din, Options{}); err == nil {
		t.Fatal("expected assignment-length error")
	}
	bad := a
	bad.BWBytes = 0
	if _, err := Run(g, res.Hot, &bad, din, Options{}); err == nil {
		t.Fatal("expected arch validation error")
	}
	if _, err := Run(g, res.Hot, &a, dense.NewMatrix(3, 3), Options{}); err == nil {
		t.Fatal("expected din shape error")
	}
	if _, err := Run(g, res.Hot, &a, nil, Options{}); err == nil {
		t.Fatal("expected nil din error")
	}
	// Hot tiles but no hot pool.
	skew := scaledArch(arch.SpadeSextansSkewed(8, 0), 64)
	if _, err := Run(g, partition.AllHot(g), &skew, nil, Options{SkipFunctional: true}); err == nil {
		t.Fatal("expected no-hot-workers error")
	}
	skew2 := scaledArch(arch.SpadeSextansSkewed(0, 8), 64)
	if _, err := Run(g, partition.AllCold(g), &skew2, nil, Options{SkipFunctional: true}); err == nil {
		t.Fatal("expected no-cold-workers error")
	}
}

func TestRunColdCacheReducesTraffic(t *testing.T) {
	// The simulated cold cache captures Din reuse the model ignores: with
	// the cache disabled, cold traffic must grow.
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, _, _ := testSetup(t, &a, 16)
	cold := partition.AllCold(g)
	with, err := Run(g, cold, &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	noCache := a
	noCache.ColdCacheBytes = 0
	without, err := Run(g, cold, &noCache, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.ColdBytes >= without.ColdBytes {
		t.Fatalf("cache did not reduce traffic: %.3g vs %.3g", with.ColdBytes, without.ColdBytes)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package sim

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/dense"
	"repro/internal/model"
	"repro/internal/partition"
)

func TestRunSpMVFunctional(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, m := testSetup(t, &a, 21)
	rng := rand.New(rand.NewSource(22))
	x := dense.NewRandom(rng, m.N, 1)
	r, err := Run(g, res.Hot, &a, x, Options{Kernel: model.KernelSpMV})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, m.N)
	if err := dense.SpMV(m, x.Data, y); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if d := y[i] - r.Output.At(i, 0); d > 1e-9 || d < -1e-9 {
			t.Fatalf("row %d: sim %g vs reference %g", i, r.Output.At(i, 0), y[i])
		}
	}
	// SpMV moves far fewer dense bytes than SpMM over the same matrix.
	spmm, err := Run(g, res.Hot, &a, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalBytes() >= spmm.TotalBytes() {
		t.Fatalf("SpMV traffic %.3g not below SpMM %.3g", r.TotalBytes(), spmm.TotalBytes())
	}
}

func TestRunSDDMMFunctional(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, m := testSetup(t, &a, 23)
	rng := rand.New(rand.NewSource(24))
	din := dense.NewRandom(rng, m.N, a.K)
	r, err := Run(g, res.Hot, &a, din, Options{Kernel: model.KernelSDDMM})
	if err != nil {
		t.Fatal(err)
	}
	if r.Output != nil {
		t.Fatal("SDDMM must not produce a dense output")
	}
	if len(r.SDDMM) != m.NNZ() {
		t.Fatalf("SDDMM values %d, want %d", len(r.SDDMM), m.NNZ())
	}
	// Verify against the reference on the grid's tile-ordered matrix.
	ref, err := dense.SDDMM(g.ToCOO(), din, din)
	if err != nil {
		t.Fatal(err)
	}
	// Reference is row-major ordered; the sim result is tile-ordered. Sum
	// both (order-independent check) and spot-check via map.
	sumSim, sumRef := 0.0, 0.0
	for _, v := range r.SDDMM {
		sumSim += v
	}
	for _, v := range ref {
		sumRef += v
	}
	if d := sumSim - sumRef; d > 1e-6 || d < -1e-6 {
		t.Fatalf("SDDMM sums differ: %g vs %g", sumSim, sumRef)
	}
	// SDDMM writes one value per nonzero instead of dense rows: no merge.
	if r.MergeTime != 0 {
		t.Fatal("SDDMM must not charge a merge")
	}
}

func TestRunSDDMMExactPerNonzero(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, m := testSetup(t, &a, 25)
	rng := rand.New(rand.NewSource(26))
	din := dense.NewRandom(rng, m.N, a.K)
	r, err := Run(g, res.Hot, &a, din, Options{Kernel: model.KernelSDDMM})
	if err != nil {
		t.Fatal(err)
	}
	// Compute the expected value for each tile-ordered nonzero directly.
	k := din.K
	for i := range g.Vals {
		ur := din.Row(int(g.Rows[i]))
		vc := din.Row(int(g.Cols[i]))
		dot := 0.0
		for j := 0; j < k; j++ {
			dot += ur[j] * vc[j]
		}
		want := g.Vals[i] * dot
		if d := r.SDDMM[i] - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("nonzero %d: %g vs %g", i, r.SDDMM[i], want)
		}
	}
	_ = m
	_ = res
}

func TestRunKernelValidation(t *testing.T) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, _, m := testSetup(t, &a, 27)
	cold := partition.AllCold(g)
	// SpMV requires a K=1 Din.
	if _, err := Run(g, cold, &a, dense.NewMatrix(m.N, a.K), Options{Kernel: model.KernelSpMV}); err == nil {
		t.Fatal("expected SpMV din shape error")
	}
	if _, err := Run(g, cold, &a, nil, Options{Kernel: model.Kernel(42), SkipFunctional: true}); err == nil {
		t.Fatal("expected unknown-kernel error")
	}
}

func TestKernelStrings(t *testing.T) {
	if model.KernelSpMM.String() != "SpMM" || model.KernelSpMV.String() != "SpMV" ||
		model.KernelSDDMM.String() != "SDDMM" {
		t.Fatal("kernel names wrong")
	}
	if model.Kernel(9).String() == "" {
		t.Fatal("fallback empty")
	}
}

// TestSharedL2ReducesColdTraffic: the §X shared last-level cache captures
// cross-PE reuse the private caches miss.
func TestSharedL2ReducesColdTraffic(t *testing.T) {
	base := scaledArch(arch.SpadeSextans(4), 64)
	g, _, _ := testSetup(t, &base, 91)
	cold := partition.AllCold(g)
	without, err := Run(g, cold, &base, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	withL2 := base
	withL2.SharedL2Bytes = 256 << 10
	with, err := Run(g, cold, &withL2, nil, Options{SkipFunctional: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.ColdBytes >= without.ColdBytes {
		t.Fatalf("shared L2 did not reduce traffic: %.3g vs %.3g",
			with.ColdBytes, without.ColdBytes)
	}
}

// TestCPUDSAFunctional: the §X CPU+DSA architecture runs the full pipeline
// and reproduces the reference result.
func TestCPUDSAFunctional(t *testing.T) {
	a := scaledArch(arch.CPUDSA(), 64)
	g, res, m := testSetup(t, &a, 92)
	din := dense.NewFilled(m.N, a.K, 1)
	r, err := Run(g, res.Hot, &a, din, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := dense.NewMatrix(m.N, a.K)
	if err := dense.SpMM(m, din, want); err != nil {
		t.Fatal(err)
	}
	if !r.Output.AlmostEqual(want, 1e-9) {
		t.Fatal("CPU+DSA run diverged from reference")
	}
	if r.MergeTime != 0 {
		t.Fatal("cache-coherent CPU needs no merge")
	}
}

package sim

// TracePoint is one sample of the simulated memory system: during
// [T, T+Dt) the engine granted BW bytes/s in aggregate, split between the
// pools. Traces make bandwidth saturation and the hot/cold interleaving
// visible — the behavior behind the paper's Table VII utilization numbers.
type TracePoint struct {
	T, Dt  float64
	BW     float64 // total granted bandwidth, bytes/s
	PoolBW []float64
}

// tracer accumulates the bandwidth timeline during an engine run.
type tracer struct {
	points []TracePoint
}

// record appends one interval sample with the engine's current grants.
func (tr *tracer) record(t, dt float64, e *engine) {
	if tr == nil || dt <= 0 {
		return
	}
	p := TracePoint{T: t, Dt: dt, PoolBW: make([]float64, len(e.pools))}
	for _, wi := range e.active {
		w := &e.workers[wi]
		if w.remB > 0 {
			p.BW += w.grant
			p.PoolBW[w.pool] += w.grant
		}
	}
	tr.points = append(tr.points, p)
}

// MovedBytes integrates the trace: ∑ BW·Dt, which must equal the engine's
// total traffic (checked by tests).
func MovedBytes(points []TracePoint) float64 {
	total := 0.0
	for _, p := range points {
		total += p.BW * p.Dt
	}
	return total
}

// PeakBW returns the highest aggregate grant observed.
func PeakBW(points []TracePoint) float64 {
	peak := 0.0
	for _, p := range points {
		if p.BW > peak {
			peak = p.BW
		}
	}
	return peak
}

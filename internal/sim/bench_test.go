package sim

import (
	"math"
	"testing"

	"repro/internal/arch"
)

// benchEnginePools builds a deterministic synthetic workload shaped like a
// real heterogeneous run: a large cold pool of bandwidth-hungry row chunks
// and a small hot pool of two-phase tile units. Sizes are chosen so the
// event loop takes thousands of steps — enough for the steady-state step
// cost (allocation behavior included) to dominate setup.
func benchEnginePools() []*pool {
	// Tiny deterministic LCG; the engine benchmark must not depend on
	// math/rand's global state or version-specific stream.
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	cold := &pool{name: "cold", workers: 16, perWorkerBW: 12e9}
	for i := 0; i < 1024; i++ {
		cold.units = append(cold.units, unitOf(1e6,
			phase{compute: 0.5e-6 + next()*2e-6, bytes: 0.2e6 + next()*1.0e6}))
	}
	hot := &pool{name: "hot", workers: 4, perWorkerBW: 60e9, linkBW: 120e9}
	for i := 0; i < 256; i++ {
		hot.units = append(hot.units, unitOf(4e6,
			phase{compute: 1e-6 + next()*4e-6, bytes: 0.5e6 + next()*2.5e6},
			phase{bytes: 0.1e6 + next()*0.4e6}))
	}
	return []*pool{cold, hot}
}

// BenchmarkEngine is the engine-dominated microbenchmark BENCH_*.json
// tracks: one full event-loop run over the synthetic heterogeneous
// workload, bandwidth-saturated so every step exercises allocation.
func BenchmarkEngine(b *testing.B) {
	pools := benchEnginePools()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := runEngine(pools, 150e9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineComputeBound drives the same workload with abundant
// bandwidth: most steps complete compute counters without changing the
// demanding set, the case the grant-invalidation fast path targets.
func BenchmarkEngineComputeBound(b *testing.B) {
	pools := benchEnginePools()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := runEngine(pools, 4e12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaterfill pins the cost of one max-min allocation round over a
// mixed claimant set.
func BenchmarkWaterfill(b *testing.B) {
	caps := make([]float64, 64)
	for i := range caps {
		caps[i] = float64(1+i%7) * 1e9
	}
	e := &engine{unsat: make([]int32, len(caps))}
	grants := make([]float64, len(caps))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.waterfill(caps, grants, 100e9)
	}
	if math.IsNaN(grants[0]) {
		b.Fatal("unexpected NaN")
	}
}

// BenchmarkRunnerReuse quantifies the multi-run engine stack on a fixed
// (grid, assignment, architecture): "fresh" constructs a new Runner per run
// (the pre-PR-9 sim.Run cost without the free list), "reused" amortizes one
// Runner's scratch across runs, and "unitcache" additionally memoizes the
// built unit pools — the GNN-layer / batch shape where construction
// (including the cold cache-model replay) drops out entirely.
func BenchmarkRunnerReuse(b *testing.B) {
	a := scaledArch(arch.SpadeSextans(4), 64)
	g, res, _ := testSetup(b, &a, 61)
	opts := Options{SkipFunctional: true}
	b.Run("fresh", func(b *testing.B) {
		var out Result
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := NewRunner().RunInto(&out, g, res.Hot, &a, nil, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		r := NewRunner()
		var out Result
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := r.RunInto(&out, g, res.Hot, &a, nil, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unitcache", func(b *testing.B) {
		r := NewRunner()
		var units UnitCache
		cached := opts
		cached.Units = &units
		var out Result
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := r.RunInto(&out, g, res.Hot, &a, nil, cached); err != nil {
				b.Fatal(err)
			}
		}
	})
}

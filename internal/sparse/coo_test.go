package sparse

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

func mkCOO(t *testing.T, n int, trip [][3]int) *COO {
	t.Helper()
	m := NewCOO(n, len(trip))
	for _, e := range trip {
		m.Append(int32(e[0]), int32(e[1]), float64(e[2]))
	}
	return m
}

func TestCOOAppendAndAt(t *testing.T) {
	m := NewCOO(4, 2)
	m.Append(1, 2, 3.5)
	m.Append(3, 0, -1)
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	r, c, v := m.At(0)
	if r != 1 || c != 2 || v != 3.5 {
		t.Fatalf("At(0) = (%d,%d,%g)", r, c, v)
	}
}

func TestSortRowMajor(t *testing.T) {
	m := mkCOO(t, 4, [][3]int{{3, 1, 1}, {0, 2, 2}, {3, 0, 3}, {0, 0, 4}})
	m.SortRowMajor()
	if !m.IsRowMajor() {
		t.Fatal("not row-major after sort")
	}
	wantRows := []int32{0, 0, 3, 3}
	wantCols := []int32{0, 2, 0, 1}
	wantVals := []float64{4, 2, 3, 1}
	for i := range wantRows {
		r, c, v := m.At(i)
		if r != wantRows[i] || c != wantCols[i] || v != wantVals[i] {
			t.Errorf("nz %d = (%d,%d,%g), want (%d,%d,%g)",
				i, r, c, v, wantRows[i], wantCols[i], wantVals[i])
		}
	}
}

func TestSortRowMajorAlreadySortedNoop(t *testing.T) {
	m := mkCOO(t, 3, [][3]int{{0, 1, 1}, {1, 0, 2}, {2, 2, 3}})
	m.SortRowMajor()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDedupSum(t *testing.T) {
	m := mkCOO(t, 3, [][3]int{{0, 0, 1}, {0, 0, 2}, {1, 1, 3}, {1, 1, 4}, {2, 0, 5}})
	m.DedupSum()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ after dedup = %d, want 3", m.NNZ())
	}
	if m.Vals[0] != 3 || m.Vals[1] != 7 || m.Vals[2] != 5 {
		t.Fatalf("vals = %v, want [3 7 5]", m.Vals)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDedupSumEmpty(t *testing.T) {
	m := NewCOO(3, 0)
	m.DedupSum() // must not panic
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCOO(rng, 32, 100)
	tt := m.Transpose().Transpose()
	if tt.NNZ() != m.NNZ() {
		t.Fatalf("nnz changed: %d -> %d", m.NNZ(), tt.NNZ())
	}
	for i := 0; i < m.NNZ(); i++ {
		r1, c1, v1 := m.At(i)
		r2, c2, v2 := tt.At(i)
		if r1 != r2 || c1 != c2 || v1 != v2 {
			t.Fatalf("nz %d differs: (%d,%d,%g) vs (%d,%d,%g)", i, r1, c1, v1, r2, c2, v2)
		}
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	m := mkCOO(t, 2, [][3]int{{0, 5, 1}})
	if err := m.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
	m = mkCOO(t, 2, [][3]int{{1, 0, 1}, {0, 0, 1}})
	if err := m.Validate(); err == nil {
		t.Fatal("expected ordering error")
	}
	m = mkCOO(t, 2, [][3]int{{0, 0, 1}, {0, 0, 2}})
	if err := m.Validate(); err == nil {
		t.Fatal("expected duplicate error")
	}
	m = &COO{N: 0}
	if err := m.Validate(); err == nil {
		t.Fatal("expected dimension error")
	}
	m = &COO{N: 2, Rows: []int32{0}, Cols: nil, Vals: nil}
	if err := m.Validate(); err == nil {
		t.Fatal("expected ragged-slice error")
	}
}

func TestDensity(t *testing.T) {
	m := mkCOO(t, 10, [][3]int{{0, 0, 1}, {5, 5, 1}})
	if d := m.Density(); d != 0.02 {
		t.Fatalf("density = %g, want 0.02", d)
	}
	if d := (&COO{}).Density(); d != 0 {
		t.Fatalf("empty density = %g", d)
	}
}

func TestRowNNZ(t *testing.T) {
	m := mkCOO(t, 3, [][3]int{{0, 0, 1}, {0, 1, 1}, {2, 2, 1}})
	counts := m.RowNNZ()
	want := []int{2, 0, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("row %d count %d, want %d", i, counts[i], w)
		}
	}
}

// randomCOO builds a valid random row-major deduplicated COO.
func randomCOO(rng *rand.Rand, n, nnz int) *COO {
	m := NewCOO(n, nnz)
	seen := map[[2]int32]bool{}
	for len(seen) < nnz && len(seen) < n*n {
		r, c := int32(rng.Intn(n)), int32(rng.Intn(n))
		if seen[[2]int32{r, c}] {
			continue
		}
		seen[[2]int32{r, c}] = true
		m.Append(r, c, rng.NormFloat64())
	}
	m.SortRowMajor()
	return m
}

// Property: sort is idempotent and preserves the multiset of entries.
func TestSortRowMajorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		nnz := rng.Intn(200)
		m := NewCOO(n, nnz)
		for i := 0; i < nnz; i++ {
			m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64())
		}
		before := append([]float64(nil), m.Vals...)
		m.SortRowMajor()
		if !m.IsRowMajor() || m.NNZ() != nnz {
			return false
		}
		after := append([]float64(nil), m.Vals...)
		sort.Float64s(before)
		sort.Float64s(after)
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSortUint64FromByte pins the radix sort against the library sort, for
// full-key sorting and for the packed-key mode that skips the pre-sorted
// index bytes, well above the radix cutover size.
func TestSortUint64FromByte(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 255, 256, 4096, 100000} {
		full := make([]uint64, n)
		for i := range full {
			full[i] = rng.Uint64()
		}
		want := append([]uint64(nil), full...)
		slices.Sort(want)
		sortUint64(full, 0)
		if !slices.Equal(full, want) {
			t.Fatalf("n=%d: full-key radix sort diverges from slices.Sort", n)
		}

		// Packed mode: high 40 bits random, low 24 bits the ascending index.
		packed := make([]uint64, n)
		for i := range packed {
			packed[i] = rng.Uint64()<<24 | uint64(i)
		}
		want = append([]uint64(nil), packed...)
		slices.Sort(want)
		sortUint64(packed, 3)
		if !slices.Equal(packed, want) {
			t.Fatalf("n=%d: packed-key radix sort diverges from slices.Sort", n)
		}
	}
}

// TestSortRowMajorMatchesStable pins the packed-key fast path against the
// definitional stable comparison sort at a size well above the radix
// cutover, with many duplicate coordinates so stability actually bites.
func TestSortRowMajorMatchesStable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, nnz = 64, 50000 // heavy duplication: ~12 entries per coordinate
	m := NewCOO(n, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), float64(i))
	}
	ref := m.Clone()
	type entry struct {
		r, c int32
		v    float64
	}
	ents := make([]entry, nnz)
	for i := range ents {
		ents[i] = entry{ref.Rows[i], ref.Cols[i], ref.Vals[i]}
	}
	sort.SliceStable(ents, func(a, b int) bool {
		if ents[a].r != ents[b].r {
			return ents[a].r < ents[b].r
		}
		return ents[a].c < ents[b].c
	})
	m.SortRowMajor()
	for i := range ents {
		if m.Rows[i] != ents[i].r || m.Cols[i] != ents[i].c || m.Vals[i] != ents[i].v {
			t.Fatalf("entry %d: got (%d,%d,%v), stable sort wants (%d,%d,%v)",
				i, m.Rows[i], m.Cols[i], m.Vals[i], ents[i].r, ents[i].c, ents[i].v)
		}
	}
}

// Property: transpose preserves nnz and swaps coordinates.
func TestTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 1+rng.Intn(30), rng.Intn(150))
		tr := m.Transpose()
		if tr.NNZ() != m.NNZ() || tr.Validate() != nil {
			return false
		}
		// Every entry of m appears transposed in tr.
		set := map[[2]int32]float64{}
		for i := 0; i < tr.NNZ(); i++ {
			r, c, v := tr.At(i)
			set[[2]int32{r, c}] = v
		}
		for i := 0; i < m.NNZ(); i++ {
			r, c, v := m.At(i)
			if set[[2]int32{c, r}] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	m := mkCOO(t, 3, [][3]int{{0, 0, 1}, {1, 2, 2}})
	c := m.Clone()
	c.Vals[0] = 99
	c.Rows[0] = 2
	if m.Vals[0] != 1 || m.Rows[0] != 0 {
		t.Fatal("clone aliases original storage")
	}
}

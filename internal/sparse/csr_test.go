package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToCSRAndBack(t *testing.T) {
	m := mkCOO(t, 4, [][3]int{{0, 1, 1}, {0, 3, 2}, {2, 0, 3}, {3, 3, 4}})
	c := ToCSR(m)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != m.NNZ() {
		t.Fatalf("nnz %d, want %d", c.NNZ(), m.NNZ())
	}
	cols, vals := c.Row(0)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[1] != 2 {
		t.Fatalf("row 0 = %v %v", cols, vals)
	}
	if cols, _ := c.Row(1); len(cols) != 0 {
		t.Fatalf("row 1 should be empty, got %v", cols)
	}
	back := c.ToCOO()
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NNZ(); i++ {
		r1, c1, v1 := m.At(i)
		r2, c2, v2 := back.At(i)
		if r1 != r2 || c1 != c2 || v1 != v2 {
			t.Fatalf("roundtrip differs at %d", i)
		}
	}
}

func TestCSRValidateCatchesErrors(t *testing.T) {
	good := ToCSR(mkCOO(t, 3, [][3]int{{0, 0, 1}, {1, 2, 2}}))

	bad := *good
	bad.RowPtr = bad.RowPtr[:2]
	if bad.Validate() == nil {
		t.Fatal("expected RowPtr length error")
	}

	bad = *good
	bad.RowPtr = append([]int64(nil), good.RowPtr...)
	bad.RowPtr[3] = 5
	if bad.Validate() == nil {
		t.Fatal("expected RowPtr bound error")
	}

	bad = *good
	bad.Cols = append([]int32(nil), good.Cols...)
	bad.Cols[0] = 9
	if bad.Validate() == nil {
		t.Fatal("expected column range error")
	}

	bad = *good
	bad.N = 0
	if bad.Validate() == nil {
		t.Fatal("expected dimension error")
	}
}

func TestCSRValidateNonMonotone(t *testing.T) {
	c := &CSR{
		N:      2,
		RowPtr: []int64{0, 2, 2},
		Cols:   []int32{1, 0}, // not increasing within row 0
		Vals:   []float64{1, 2},
	}
	if c.Validate() == nil {
		t.Fatal("expected non-increasing column error")
	}
}

// Property: COO -> CSR -> COO is the identity on valid matrices.
func TestCSRRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 1+rng.Intn(50), rng.Intn(300))
		c := ToCSR(m)
		if c.Validate() != nil {
			return false
		}
		back := c.ToCOO()
		if back.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < m.NNZ(); i++ {
			r1, c1, v1 := m.At(i)
			r2, c2, v2 := back.At(i)
			if r1 != r2 || c1 != c2 || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

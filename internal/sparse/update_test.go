package sparse

import (
	"math/rand"
	"reflect"
	"testing"
)

// naiveApply is the from-scratch reference: each edit applied one at a time
// with a linear search, the result re-sorted at the end. Quadratic, but
// unarguably correct — the property tests pin ApplyEdits against it.
func naiveApply(m *COO, edits []Edit) *COO {
	type coord struct{ r, c int32 }
	vals := map[coord]float64{}
	order := make([]coord, 0, m.NNZ())
	for i := 0; i < m.NNZ(); i++ {
		k := coord{m.Rows[i], m.Cols[i]}
		vals[k] = m.Vals[i]
		order = append(order, k)
	}
	for _, e := range edits {
		k := coord{e.Row, e.Col}
		_, exists := vals[k]
		if e.Del {
			if exists {
				delete(vals, k)
				for i, o := range order {
					if o == k {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
			continue
		}
		if !exists {
			order = append(order, k)
		}
		vals[k] = e.Val
	}
	out := NewCOO(m.N, len(order))
	for _, k := range order {
		out.Append(k.r, k.c, vals[k])
	}
	out.SortRowMajor()
	// ApplyEdits always reallocates exact-content slices; normalize the
	// reference the same way so DeepEqual compares content, not capacity.
	out.Rows = append([]int32{}, out.Rows...)
	out.Cols = append([]int32{}, out.Cols...)
	out.Vals = append([]float64{}, out.Vals...)
	return out
}

// randomEdits draws a mixed insert/update/delete stream: deletes and
// updates target existing coordinates (when any exist), inserts are
// uniform.
func randomEdits(rng *rand.Rand, m *COO, n int) []Edit {
	edits := make([]Edit, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case m.NNZ() > 0 && rng.Intn(3) == 0: // delete an existing edge
			j := rng.Intn(m.NNZ())
			edits = append(edits, Edit{Row: m.Rows[j], Col: m.Cols[j], Del: true})
		case m.NNZ() > 0 && rng.Intn(3) == 0: // update an existing edge
			j := rng.Intn(m.NNZ())
			edits = append(edits, Edit{Row: m.Rows[j], Col: m.Cols[j], Val: rng.Float64() + 0.5})
		default: // insert (possibly colliding with an existing edge)
			edits = append(edits, Edit{
				Row: int32(rng.Intn(m.N)), Col: int32(rng.Intn(m.N)),
				Val: rng.Float64() + 0.5,
			})
		}
	}
	return edits
}

// TestApplyEditsMatchesRebuild is the archetype property: after any random
// sequence of edit batches, the incrementally-maintained matrix is
// DeepEqual to one rebuilt from scratch, stays row-major, deduplicated and
// valid.
func TestApplyEditsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(64)
		m := randomCOO(rng, n, rng.Intn(4*n))
		want := m.Clone()
		// Normalize the clone's slices like naiveApply does.
		var allEdits []Edit
		for batch := 0; batch < 1+rng.Intn(4); batch++ {
			edits := randomEdits(rng, m, rng.Intn(3*n))
			allEdits = append(allEdits, edits...)
			if err := m.ApplyEdits(edits); err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("trial %d batch %d: invalid after edits: %v", trial, batch, err)
			}
		}
		rebuilt := naiveApply(want, allEdits)
		if m.NNZ() == 0 && rebuilt.NNZ() == 0 {
			continue // both empty; slice identities may differ trivially
		}
		if !reflect.DeepEqual(m.Rows, rebuilt.Rows) ||
			!reflect.DeepEqual(m.Cols, rebuilt.Cols) ||
			!reflect.DeepEqual(m.Vals, rebuilt.Vals) || m.N != rebuilt.N {
			t.Fatalf("trial %d: incremental result diverged from scratch rebuild\n"+
				"incremental: nnz=%d\nrebuilt:     nnz=%d", trial, m.NNZ(), rebuilt.NNZ())
		}
	}
}

func TestApplyEditsSemantics(t *testing.T) {
	m := NewCOO(4, 0)
	m.Append(0, 1, 1)
	m.Append(2, 3, 2)

	// Insert, update, delete, and last-edit-wins in one stream.
	err := m.ApplyEdits([]Edit{
		{Row: 1, Col: 1, Val: 9},             // insert
		{Row: 0, Col: 1, Val: 5},             // update existing
		{Row: 2, Col: 3, Del: true},          // delete existing
		{Row: 3, Col: 3, Del: true},          // delete absent: no-op
		{Row: 1, Col: 1, Val: 7},             // later edit to the same coord wins
		{Row: 1, Col: 1, Del: true},          // ...and later still: deleted
		{Row: 3, Col: 0, Del: true},          // delete then insert
		{Row: 3, Col: 0, Val: 4, Del: false}, // insert after delete survives
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[[2]int32]float64{{0, 1}: 5, {3, 0}: 4}
	if m.NNZ() != len(want) {
		t.Fatalf("nnz = %d, want %d", m.NNZ(), len(want))
	}
	for i := 0; i < m.NNZ(); i++ {
		r, c, v := m.At(i)
		if want[[2]int32{r, c}] != v {
			t.Fatalf("unexpected nonzero (%d,%d)=%g", r, c, v)
		}
	}
}

func TestApplyEditsRejectsOutOfRange(t *testing.T) {
	m := NewCOO(4, 0)
	for _, e := range []Edit{
		{Row: -1, Col: 0}, {Row: 0, Col: -1}, {Row: 4, Col: 0}, {Row: 0, Col: 4},
	} {
		if err := m.ApplyEdits([]Edit{e}); err == nil {
			t.Fatalf("edit %+v accepted, want range error", e)
		}
	}
	if err := m.ApplyEdits(nil); err != nil {
		t.Fatalf("empty stream: %v", err)
	}
}

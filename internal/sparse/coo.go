// Package sparse provides the sparse matrix substrate used throughout the
// HotTiles reproduction: coordinate (COO) and compressed sparse row (CSR)
// formats, conversions between them, and structural utilities (sorting,
// deduplication, transposition, validation).
//
// All matrices are square N×N as in the paper (SpMM multiplies a square
// sparse A by a dense N×K input). Values are float64 in the substrate;
// element sizes used for traffic accounting are configured separately in the
// model layer, so the same structural matrix can be "stored" as fp32 (the
// SPADE-Sextans experiments) or fp64 (the PIUMA experiments).
package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format sparse matrix. Nonzeros are stored as parallel
// slices of row index, column index, and value. A COO is row-ordered when
// nonzeros are sorted by (row, col); most of the pipeline requires
// row-ordered input and the constructors here establish it.
type COO struct {
	N    int // matrix dimension (square N×N)
	Rows []int32
	Cols []int32
	Vals []float64
}

// NewCOO returns an empty COO of dimension n with capacity for nnz nonzeros.
func NewCOO(n, nnz int) *COO {
	return &COO{
		N:    n,
		Rows: make([]int32, 0, nnz),
		Cols: make([]int32, 0, nnz),
		Vals: make([]float64, 0, nnz),
	}
}

// NNZ reports the number of stored nonzeros.
func (m *COO) NNZ() int { return len(m.Vals) }

// Append adds a nonzero. It does not maintain ordering; call SortRowMajor
// when done appending.
func (m *COO) Append(r, c int32, v float64) {
	m.Rows = append(m.Rows, r)
	m.Cols = append(m.Cols, c)
	m.Vals = append(m.Vals, v)
}

// At returns the nonzero at position i as (row, col, val).
func (m *COO) At(i int) (int32, int32, float64) {
	return m.Rows[i], m.Cols[i], m.Vals[i]
}

// Clone returns a deep copy of the matrix.
func (m *COO) Clone() *COO {
	c := &COO{
		N:    m.N,
		Rows: append([]int32(nil), m.Rows...),
		Cols: append([]int32(nil), m.Cols...),
		Vals: append([]float64(nil), m.Vals...),
	}
	return c
}

// cooSorter sorts the three parallel slices by (row, col).
type cooSorter struct{ m *COO }

func (s cooSorter) Len() int { return s.m.NNZ() }
func (s cooSorter) Less(i, j int) bool {
	if s.m.Rows[i] != s.m.Rows[j] {
		return s.m.Rows[i] < s.m.Rows[j]
	}
	return s.m.Cols[i] < s.m.Cols[j]
}
func (s cooSorter) Swap(i, j int) {
	s.m.Rows[i], s.m.Rows[j] = s.m.Rows[j], s.m.Rows[i]
	s.m.Cols[i], s.m.Cols[j] = s.m.Cols[j], s.m.Cols[i]
	s.m.Vals[i], s.m.Vals[j] = s.m.Vals[j], s.m.Vals[i]
}

// SortRowMajor sorts nonzeros by (row, col). Row-major ordering is what the
// paper calls "row-ordered nonzeros" (Figure 6) and is assumed by the tiler
// and the untiled traversal of the SPADE workers.
func (m *COO) SortRowMajor() {
	if m.IsRowMajor() {
		return
	}
	// Counting-sort style bucketing by row keeps this O(nnz + N) for the
	// common nearly-sorted generator output, then an in-bucket sort by col.
	sort.Stable(cooSorter{m})
}

// IsRowMajor reports whether the nonzeros are sorted by (row, col).
func (m *COO) IsRowMajor() bool {
	for i := 1; i < m.NNZ(); i++ {
		if m.Rows[i] < m.Rows[i-1] ||
			(m.Rows[i] == m.Rows[i-1] && m.Cols[i] < m.Cols[i-1]) {
			return false
		}
	}
	return true
}

// DedupSum collapses duplicate (row, col) entries by summing their values.
// The matrix must be row-major sorted; the result remains row-major.
func (m *COO) DedupSum() {
	if m.NNZ() == 0 {
		return
	}
	out := 0
	for i := 1; i < m.NNZ(); i++ {
		if m.Rows[i] == m.Rows[out] && m.Cols[i] == m.Cols[out] {
			m.Vals[out] += m.Vals[i]
			continue
		}
		out++
		m.Rows[out] = m.Rows[i]
		m.Cols[out] = m.Cols[i]
		m.Vals[out] = m.Vals[i]
	}
	m.Rows = m.Rows[:out+1]
	m.Cols = m.Cols[:out+1]
	m.Vals = m.Vals[:out+1]
}

// Transpose returns the transpose as a new row-major COO.
func (m *COO) Transpose() *COO {
	t := NewCOO(m.N, m.NNZ())
	t.Rows = append(t.Rows, m.Cols...)
	t.Cols = append(t.Cols, m.Rows...)
	t.Vals = append(t.Vals, m.Vals...)
	t.SortRowMajor()
	return t
}

// Validate checks structural invariants: indices in range, row-major order,
// and no duplicate coordinates. It returns a descriptive error on the first
// violation found.
func (m *COO) Validate() error {
	if m.N <= 0 {
		return fmt.Errorf("sparse: non-positive dimension %d", m.N)
	}
	if len(m.Rows) != len(m.Cols) || len(m.Rows) != len(m.Vals) {
		return fmt.Errorf("sparse: ragged COO slices: rows=%d cols=%d vals=%d",
			len(m.Rows), len(m.Cols), len(m.Vals))
	}
	for i := 0; i < m.NNZ(); i++ {
		if m.Rows[i] < 0 || int(m.Rows[i]) >= m.N || m.Cols[i] < 0 || int(m.Cols[i]) >= m.N {
			return fmt.Errorf("sparse: nonzero %d at (%d,%d) out of range for N=%d",
				i, m.Rows[i], m.Cols[i], m.N)
		}
		if i > 0 {
			switch {
			case m.Rows[i] < m.Rows[i-1],
				m.Rows[i] == m.Rows[i-1] && m.Cols[i] < m.Cols[i-1]:
				return fmt.Errorf("sparse: nonzeros not row-major at index %d", i)
			case m.Rows[i] == m.Rows[i-1] && m.Cols[i] == m.Cols[i-1]:
				return fmt.Errorf("sparse: duplicate coordinate (%d,%d) at index %d",
					m.Rows[i], m.Cols[i], i)
			}
		}
	}
	return nil
}

// Density returns nnz / N².
func (m *COO) Density() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.N) * float64(m.N))
}

// RowNNZ returns the number of nonzeros in each row.
func (m *COO) RowNNZ() []int {
	counts := make([]int, m.N)
	for _, r := range m.Rows {
		counts[r]++
	}
	return counts
}

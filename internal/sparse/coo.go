// Package sparse provides the sparse matrix substrate used throughout the
// HotTiles reproduction: coordinate (COO) and compressed sparse row (CSR)
// formats, conversions between them, and structural utilities (sorting,
// deduplication, transposition, validation).
//
// All matrices are square N×N as in the paper (SpMM multiplies a square
// sparse A by a dense N×K input). Values are float64 in the substrate;
// element sizes used for traffic accounting are configured separately in the
// model layer, so the same structural matrix can be "stored" as fp32 (the
// SPADE-Sextans experiments) or fp64 (the PIUMA experiments).
package sparse

import (
	"fmt"
	"slices"
	"sync"
)

// COO is a coordinate-format sparse matrix. Nonzeros are stored as parallel
// slices of row index, column index, and value. A COO is row-ordered when
// nonzeros are sorted by (row, col); most of the pipeline requires
// row-ordered input and the constructors here establish it.
type COO struct {
	N    int // matrix dimension (square N×N)
	Rows []int32
	Cols []int32
	Vals []float64
}

// NewCOO returns an empty COO of dimension n with capacity for nnz nonzeros.
func NewCOO(n, nnz int) *COO {
	return &COO{
		N:    n,
		Rows: make([]int32, 0, nnz),
		Cols: make([]int32, 0, nnz),
		Vals: make([]float64, 0, nnz),
	}
}

// NNZ reports the number of stored nonzeros.
func (m *COO) NNZ() int { return len(m.Vals) }

// Append adds a nonzero. It does not maintain ordering; call SortRowMajor
// when done appending.
func (m *COO) Append(r, c int32, v float64) {
	m.Rows = append(m.Rows, r)
	m.Cols = append(m.Cols, c)
	m.Vals = append(m.Vals, v)
}

// At returns the nonzero at position i as (row, col, val).
func (m *COO) At(i int) (int32, int32, float64) {
	return m.Rows[i], m.Cols[i], m.Vals[i]
}

// Clone returns a deep copy of the matrix.
func (m *COO) Clone() *COO {
	c := &COO{
		N:    m.N,
		Rows: append([]int32(nil), m.Rows...),
		Cols: append([]int32(nil), m.Cols...),
		Vals: append([]float64(nil), m.Vals...),
	}
	return c
}

// SortRowMajor sorts nonzeros by (row, col), preserving the input order of
// duplicate coordinates (a stable sort, so DedupSum accumulates values in
// append order). Row-major ordering is what the paper calls "row-ordered
// nonzeros" (Figure 6) and is assumed by the tiler and the untiled
// traversal of the SPADE workers.
//
// The hot path packs (row, col, original index) into one uint64 key per
// nonzero and sorts the keys with the non-reflective slices.Sort — the
// index tiebreak makes the comparison a total order, so the resulting
// permutation is exactly the stable (row, col) order the old
// sort.Stable-based implementation produced, at a fraction of the cost
// (matrix generation is dominated by this sort). Matrices too large for
// the packing fall back to sorting an index permutation with the same
// three-way comparator.
//
//hot:path
func (m *COO) SortRowMajor() {
	if m.IsRowMajor() {
		return
	}
	nnz := m.NNZ()
	if nnz <= 1<<24 && coordsFit(m, 1<<20) {
		// row:20 | col:20 | idx:24 — total order, stable by construction.
		keys := make([]uint64, nnz)
		for i := 0; i < nnz; i++ {
			keys[i] = uint64(m.Rows[i])<<44 | uint64(m.Cols[i])<<24 | uint64(i)
		}
		// The low 24 bits hold the append index, already ascending, so the
		// stable LSD passes over those bytes are identity permutations the
		// sort can skip outright (see sortUint64). The permutation is applied
		// straight off the sorted keys — no materialized perm array.
		sortUint64(keys, 3)
		rows := make([]int32, nnz)
		cols := make([]int32, nnz)
		vals := make([]float64, nnz)
		for i, k := range keys {
			p := k & (1<<24 - 1)
			rows[i] = m.Rows[p]
			cols[i] = m.Cols[p]
			vals[i] = m.Vals[p]
		}
		m.Rows, m.Cols, m.Vals = rows, cols, vals
		return
	}
	perm := make([]int32, nnz)
	for i := range perm {
		perm[i] = int32(i)
	}
	slices.SortFunc(perm, func(a, b int32) int {
		switch {
		case m.Rows[a] != m.Rows[b]:
			return int(m.Rows[a]) - int(m.Rows[b])
		case m.Cols[a] != m.Cols[b]:
			return int(m.Cols[a]) - int(m.Cols[b])
		default:
			return int(a) - int(b)
		}
	})
	m.applyPerm(perm)
}

// coordsFit reports whether every coordinate lies in [0, limit) — the sort
// may run on not-yet-validated input (e.g. a malformed MatrixMarket file),
// and the packed-key path must not be taken when a coordinate would
// overflow its bit field.
//
//hot:path
func coordsFit(m *COO, limit int32) bool {
	or := int32(0)
	for i := range m.Rows {
		or |= m.Rows[i] | m.Cols[i]
	}
	return or >= 0 && or < limit
}

// applyPerm reorders the nonzeros so position i holds old entry perm[i].
//
//hot:path
func (m *COO) applyPerm(perm []int32) {
	rows := make([]int32, len(perm))
	cols := make([]int32, len(perm))
	vals := make([]float64, len(perm))
	for i, p := range perm {
		rows[i] = m.Rows[p]
		cols[i] = m.Cols[p]
		vals[i] = m.Vals[p]
	}
	m.Rows, m.Cols, m.Vals = rows, cols, vals
}

// sortUint64 sorts s ascending by the bytes from fromByte (0 = full keys)
// upward: an LSD radix sort for large inputs, falling back to the comparison
// sort below the size where radix wins. The keys here are distinct — every
// packed key carries its original index — so any correct ascending sort
// yields the identical sequence, and the pass count adapts by skipping bytes
// all keys share.
//
// A non-zero fromByte requires the input to already be ascending in its low
// 8·fromByte bits (the packed append index is). LSD radix passes are stable,
// so sorting only the high bytes of such input reproduces exactly the full
// lexicographic order — the skipped low-byte passes would have been identity
// permutations — at a fraction of the histogram and shuffle cost.
//
//hot:path
func sortUint64(s []uint64, fromByte int) {
	const radixMin = 256
	if len(s) < radixMin {
		slices.Sort(s)
		return
	}
	auxp := radixAux.Get().(*[]uint64)
	if cap(*auxp) < len(s) {
		*auxp = make([]uint64, len(s))
	}
	aux := (*auxp)[:len(s)]
	var count [8][256]int
	if fromByte == 3 { // packed (row, col, idx) keys: idx bytes pre-sorted
		for _, v := range s {
			count[3][(v>>24)&0xff]++
			count[4][(v>>32)&0xff]++
			count[5][(v>>40)&0xff]++
			count[6][(v>>48)&0xff]++
			count[7][(v>>56)&0xff]++
		}
	} else {
		for _, v := range s {
			count[0][v&0xff]++
			count[1][(v>>8)&0xff]++
			count[2][(v>>16)&0xff]++
			count[3][(v>>24)&0xff]++
			count[4][(v>>32)&0xff]++
			count[5][(v>>40)&0xff]++
			count[6][(v>>48)&0xff]++
			count[7][(v>>56)&0xff]++
		}
	}
	from, to := s, aux
	for pass := fromByte; pass < 8; pass++ {
		shift := uint(pass * 8)
		c := &count[pass]
		// All keys share this byte: the pass is the identity, skip it.
		if c[(from[0]>>shift)&0xff] == len(s) {
			continue
		}
		offs := 0
		for b := 0; b < 256; b++ {
			n := c[b]
			c[b] = offs
			offs += n
		}
		for _, v := range from {
			b := (v >> shift) & 0xff
			to[c[b]] = v
			c[b]++
		}
		from, to = to, from
	}
	if &from[0] != &s[0] {
		copy(s, from)
	}
	radixAux.Put(auxp)
}

// radixAux pools sortUint64's scatter buffer: sweeps radix-sort many
// matrices back to back, and every executed pass scatters a full
// permutation into the buffer before anything reads it, so reuse (including
// stale contents) is invisible to the result.
var radixAux = sync.Pool{New: func() any { return new([]uint64) }}

// IsRowMajor reports whether the nonzeros are sorted by (row, col).
func (m *COO) IsRowMajor() bool {
	for i := 1; i < m.NNZ(); i++ {
		if m.Rows[i] < m.Rows[i-1] ||
			(m.Rows[i] == m.Rows[i-1] && m.Cols[i] < m.Cols[i-1]) {
			return false
		}
	}
	return true
}

// DedupSum collapses duplicate (row, col) entries by summing their values.
// The matrix must be row-major sorted; the result remains row-major.
func (m *COO) DedupSum() {
	if m.NNZ() == 0 {
		return
	}
	out := 0
	for i := 1; i < m.NNZ(); i++ {
		if m.Rows[i] == m.Rows[out] && m.Cols[i] == m.Cols[out] {
			m.Vals[out] += m.Vals[i]
			continue
		}
		out++
		m.Rows[out] = m.Rows[i]
		m.Cols[out] = m.Cols[i]
		m.Vals[out] = m.Vals[i]
	}
	m.Rows = m.Rows[:out+1]
	m.Cols = m.Cols[:out+1]
	m.Vals = m.Vals[:out+1]
}

// Transpose returns the transpose as a new row-major COO.
func (m *COO) Transpose() *COO {
	t := NewCOO(m.N, m.NNZ())
	t.Rows = append(t.Rows, m.Cols...)
	t.Cols = append(t.Cols, m.Rows...)
	t.Vals = append(t.Vals, m.Vals...)
	t.SortRowMajor()
	return t
}

// Validate checks structural invariants: indices in range, row-major order,
// and no duplicate coordinates. It returns a descriptive error on the first
// violation found.
func (m *COO) Validate() error {
	if m.N <= 0 {
		return fmt.Errorf("sparse: non-positive dimension %d", m.N)
	}
	if len(m.Rows) != len(m.Cols) || len(m.Rows) != len(m.Vals) {
		return fmt.Errorf("sparse: ragged COO slices: rows=%d cols=%d vals=%d",
			len(m.Rows), len(m.Cols), len(m.Vals))
	}
	for i := 0; i < m.NNZ(); i++ {
		if m.Rows[i] < 0 || int(m.Rows[i]) >= m.N || m.Cols[i] < 0 || int(m.Cols[i]) >= m.N {
			return fmt.Errorf("sparse: nonzero %d at (%d,%d) out of range for N=%d",
				i, m.Rows[i], m.Cols[i], m.N)
		}
		if i > 0 {
			switch {
			case m.Rows[i] < m.Rows[i-1],
				m.Rows[i] == m.Rows[i-1] && m.Cols[i] < m.Cols[i-1]:
				return fmt.Errorf("sparse: nonzeros not row-major at index %d", i)
			case m.Rows[i] == m.Rows[i-1] && m.Cols[i] == m.Cols[i-1]:
				return fmt.Errorf("sparse: duplicate coordinate (%d,%d) at index %d",
					m.Rows[i], m.Cols[i], i)
			}
		}
	}
	return nil
}

// Density returns nnz / N².
func (m *COO) Density() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.N) * float64(m.N))
}

// RowNNZ returns the number of nonzeros in each row.
func (m *COO) RowNNZ() []int {
	counts := make([]int, m.N)
	for _, r := range m.Rows {
		counts[r]++
	}
	return counts
}

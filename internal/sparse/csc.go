package sparse

import "fmt"

// CSC is a compressed-sparse-column matrix: ColPtr has N+1 entries
// delimiting each column's span in Rows/Vals. Table I notes that the
// nonzero ordering (row- or column-ordered) changes a worker's reuse
// behavior; CSC is the column-ordered substrate for such configurations and
// for fast column slicing.
type CSC struct {
	N      int
	ColPtr []int64
	Rows   []int32
	Vals   []float64
}

// NNZ reports the number of stored nonzeros.
func (m *CSC) NNZ() int { return len(m.Vals) }

// Col returns the row indices and values of column c as sub-slices (no
// copies; callers must not modify them).
func (m *CSC) Col(c int) ([]int32, []float64) {
	lo, hi := m.ColPtr[c], m.ColPtr[c+1]
	return m.Rows[lo:hi], m.Vals[lo:hi]
}

// Validate checks structural invariants: monotone column pointers covering
// all nonzeros, in-range strictly-increasing row indices within each
// column.
func (m *CSC) Validate() error {
	if m.N <= 0 {
		return fmt.Errorf("sparse: non-positive dimension %d", m.N)
	}
	if len(m.ColPtr) != m.N+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(m.ColPtr), m.N+1)
	}
	if m.ColPtr[0] != 0 || m.ColPtr[m.N] != int64(m.NNZ()) {
		return fmt.Errorf("sparse: ColPtr bounds [%d,%d], want [0,%d]",
			m.ColPtr[0], m.ColPtr[m.N], m.NNZ())
	}
	if len(m.Rows) != len(m.Vals) {
		return fmt.Errorf("sparse: ragged CSC slices: rows=%d vals=%d", len(m.Rows), len(m.Vals))
	}
	for c := 0; c < m.N; c++ {
		if m.ColPtr[c] > m.ColPtr[c+1] {
			return fmt.Errorf("sparse: ColPtr not monotone at column %d", c)
		}
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			if m.Rows[i] < 0 || int(m.Rows[i]) >= m.N {
				return fmt.Errorf("sparse: column %d row %d out of range for N=%d", c, m.Rows[i], m.N)
			}
			if i > m.ColPtr[c] && m.Rows[i] <= m.Rows[i-1] {
				return fmt.Errorf("sparse: column %d rows not strictly increasing at nnz %d", c, i)
			}
		}
	}
	return nil
}

// ToCSC converts a row-major COO into CSC with a counting pass (no sort).
func ToCSC(m *COO) *CSC {
	c := &CSC{
		N:      m.N,
		ColPtr: make([]int64, m.N+1),
		Rows:   make([]int32, m.NNZ()),
		Vals:   make([]float64, m.NNZ()),
	}
	for _, col := range m.Cols {
		c.ColPtr[col+1]++
	}
	for i := 0; i < m.N; i++ {
		c.ColPtr[i+1] += c.ColPtr[i]
	}
	offsets := make([]int64, m.N)
	copy(offsets, c.ColPtr[:m.N])
	// Row-major input means rows arrive in increasing order per column, so
	// the fill below leaves each column sorted by row.
	for i := 0; i < m.NNZ(); i++ {
		col := m.Cols[i]
		o := offsets[col]
		offsets[col]++
		c.Rows[o] = m.Rows[i]
		c.Vals[o] = m.Vals[i]
	}
	return c
}

// ToCOO converts a CSC matrix back into a row-major COO.
func (m *CSC) ToCOO() *COO {
	c := NewCOO(m.N, m.NNZ())
	for col := 0; col < m.N; col++ {
		for i := m.ColPtr[col]; i < m.ColPtr[col+1]; i++ {
			c.Append(m.Rows[i], int32(col), m.Vals[i])
		}
	}
	c.SortRowMajor()
	return c
}

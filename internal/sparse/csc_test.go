package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToCSCAndBack(t *testing.T) {
	m := mkCOO(t, 4, [][3]int{{0, 1, 1}, {0, 3, 2}, {2, 0, 3}, {3, 1, 4}})
	c := ToCSC(m)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rows, vals := c.Col(1)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 3 || vals[1] != 4 {
		t.Fatalf("col 1 = %v %v", rows, vals)
	}
	if rows, _ := c.Col(2); len(rows) != 0 {
		t.Fatalf("col 2 should be empty, got %v", rows)
	}
	back := c.ToCOO()
	for i := 0; i < m.NNZ(); i++ {
		r1, c1, v1 := m.At(i)
		r2, c2, v2 := back.At(i)
		if r1 != r2 || c1 != c2 || v1 != v2 {
			t.Fatalf("roundtrip differs at %d", i)
		}
	}
}

func TestCSCValidateCatchesErrors(t *testing.T) {
	good := ToCSC(mkCOO(t, 3, [][3]int{{0, 0, 1}, {2, 1, 2}}))

	bad := *good
	bad.ColPtr = bad.ColPtr[:2]
	if bad.Validate() == nil {
		t.Fatal("expected ColPtr length error")
	}
	bad = *good
	bad.ColPtr = append([]int64(nil), good.ColPtr...)
	bad.ColPtr[3] = 7
	if bad.Validate() == nil {
		t.Fatal("expected ColPtr bound error")
	}
	bad = *good
	bad.Rows = append([]int32(nil), good.Rows...)
	bad.Rows[0] = 9
	if bad.Validate() == nil {
		t.Fatal("expected row range error")
	}
	bad = *good
	bad.N = 0
	if bad.Validate() == nil {
		t.Fatal("expected dimension error")
	}
	nonmono := &CSC{N: 2, ColPtr: []int64{0, 2, 2}, Rows: []int32{1, 0}, Vals: []float64{1, 2}}
	if nonmono.Validate() == nil {
		t.Fatal("expected non-increasing row error")
	}
}

// Property: COO -> CSC -> COO is the identity, and CSC columns are the
// transpose's rows.
func TestCSCRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 1+rng.Intn(40), rng.Intn(250))
		c := ToCSC(m)
		if c.Validate() != nil {
			return false
		}
		back := c.ToCOO()
		if back.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < m.NNZ(); i++ {
			r1, c1, v1 := m.At(i)
			r2, c2, v2 := back.At(i)
			if r1 != r2 || c1 != c2 || v1 != v2 {
				return false
			}
		}
		// Column c of CSC(m) equals row c of CSR(mᵀ).
		tr := ToCSR(m.Transpose())
		for col := 0; col < m.N; col++ {
			rows, _ := c.Col(col)
			cols2, _ := tr.Row(col)
			if len(rows) != len(cols2) {
				return false
			}
			for j := range rows {
				if rows[j] != cols2[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package sparse

import (
	"fmt"
	"slices"
)

// Edit is one mutation of an evolving matrix: setting the value at a
// coordinate (an edge insert, or a weight update when the edge already
// exists) or deleting the coordinate (Del true; Val is ignored). Streams of
// edits model the evolving-graph workloads GNN systems see between
// inference batches.
type Edit struct {
	Row, Col int32
	Val      float64
	Del      bool
}

// ApplyEdits applies an edit stream to a row-major deduplicated matrix
// incrementally: one merge pass over the existing nonzeros and the sorted
// edits, O(nnz + len(edits)·log(len(edits))), instead of re-sorting the
// whole matrix. Stream order is honored — when several edits touch one
// coordinate, the last one wins. Deleting an absent coordinate is a no-op.
// The matrix remains row-major and deduplicated, so the result is
// indistinguishable from rebuilding the matrix from scratch with the same
// final edge set (the invariant the evolving-workload property tests pin).
func (m *COO) ApplyEdits(edits []Edit) error {
	if len(edits) == 0 {
		return nil
	}
	for i, e := range edits {
		if e.Row < 0 || int(e.Row) >= m.N || e.Col < 0 || int(e.Col) >= m.N {
			return fmt.Errorf("sparse: edit %d at (%d,%d) out of range for N=%d",
				i, e.Row, e.Col, m.N)
		}
	}

	// Sort a private copy by coordinate, stably, so stream order survives
	// within each coordinate; then keep only the last edit per coordinate.
	es := append([]Edit(nil), edits...)
	slices.SortStableFunc(es, func(a, b Edit) int {
		switch {
		case a.Row != b.Row:
			return int(a.Row) - int(b.Row)
		case a.Col != b.Col:
			return int(a.Col) - int(b.Col)
		default:
			return 0
		}
	})
	w := 0
	for i := 1; i < len(es); i++ {
		if es[i].Row == es[w].Row && es[i].Col == es[w].Col {
			es[w] = es[i]
			continue
		}
		w++
		es[w] = es[i]
	}
	es = es[:w+1]

	// Merge the sorted edits into the row-major nonzeros.
	nnz := m.NNZ()
	rows := make([]int32, 0, nnz+len(es))
	cols := make([]int32, 0, nnz+len(es))
	vals := make([]float64, 0, nnz+len(es))
	i, j := 0, 0
	for i < nnz && j < len(es) {
		cmp := int(m.Rows[i]) - int(es[j].Row)
		if cmp == 0 {
			cmp = int(m.Cols[i]) - int(es[j].Col)
		}
		switch {
		case cmp < 0: // existing nonzero untouched by the stream
			rows = append(rows, m.Rows[i])
			cols = append(cols, m.Cols[i])
			vals = append(vals, m.Vals[i])
			i++
		case cmp > 0: // edit at a coordinate with no existing nonzero
			if !es[j].Del {
				rows = append(rows, es[j].Row)
				cols = append(cols, es[j].Col)
				vals = append(vals, es[j].Val)
			}
			j++
		default: // edit overwrites (or deletes) an existing nonzero
			if !es[j].Del {
				rows = append(rows, es[j].Row)
				cols = append(cols, es[j].Col)
				vals = append(vals, es[j].Val)
			}
			i++
			j++
		}
	}
	for ; i < nnz; i++ {
		rows = append(rows, m.Rows[i])
		cols = append(cols, m.Cols[i])
		vals = append(vals, m.Vals[i])
	}
	for ; j < len(es); j++ {
		if !es[j].Del {
			rows = append(rows, es[j].Row)
			cols = append(cols, es[j].Col)
			vals = append(vals, es[j].Val)
		}
	}
	m.Rows, m.Cols, m.Vals = rows, cols, vals
	return nil
}

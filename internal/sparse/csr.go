package sparse

import "fmt"

// CSR is a compressed-sparse-row matrix: RowPtr has N+1 entries delimiting
// each row's span in Cols/Vals. The PIUMA workers in the paper operate on
// CSR-like formats (Table III); the HotTiles pipeline emits CSR sections for
// them.
type CSR struct {
	N      int
	RowPtr []int64
	Cols   []int32
	Vals   []float64
}

// NNZ reports the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Vals) }

// Row returns the column indices and values of row r as sub-slices (no
// copies; callers must not modify them).
func (m *CSR) Row(r int) ([]int32, []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.Cols[lo:hi], m.Vals[lo:hi]
}

// Validate checks structural invariants: monotone row pointers covering all
// nonzeros, in-range sorted column indices within each row. Monotonicity is
// established for the whole pointer array before any pointer is used to
// index Cols — a decoded-from-disk CSR (hotcore.ReadPlan) can carry a
// locally increasing but globally non-monotone RowPtr (e.g. [0, 10, 5])
// whose early rows would otherwise index past the column slice.
func (m *CSR) Validate() error {
	if m.N <= 0 {
		return fmt.Errorf("sparse: non-positive dimension %d", m.N)
	}
	if len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.N+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.N] != int64(m.NNZ()) {
		return fmt.Errorf("sparse: RowPtr bounds [%d,%d], want [0,%d]",
			m.RowPtr[0], m.RowPtr[m.N], m.NNZ())
	}
	if len(m.Cols) != len(m.Vals) {
		return fmt.Errorf("sparse: ragged CSR slices: cols=%d vals=%d", len(m.Cols), len(m.Vals))
	}
	for r := 0; r < m.N; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", r)
		}
	}
	for r := 0; r < m.N; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			if m.Cols[i] < 0 || int(m.Cols[i]) >= m.N {
				return fmt.Errorf("sparse: row %d col %d out of range for N=%d", r, m.Cols[i], m.N)
			}
			if i > m.RowPtr[r] && m.Cols[i] <= m.Cols[i-1] {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at nnz %d", r, i)
			}
		}
	}
	return nil
}

// ToCSR converts a row-major COO into CSR. The input must satisfy
// (*COO).Validate (row-major, deduplicated).
func ToCSR(m *COO) *CSR {
	c := &CSR{
		N:      m.N,
		RowPtr: make([]int64, m.N+1),
		Cols:   append([]int32(nil), m.Cols...),
		Vals:   append([]float64(nil), m.Vals...),
	}
	for _, r := range m.Rows {
		c.RowPtr[r+1]++
	}
	for r := 0; r < m.N; r++ {
		c.RowPtr[r+1] += c.RowPtr[r]
	}
	return c
}

// ToCOO converts a CSR matrix back into a row-major COO.
func (m *CSR) ToCOO() *COO {
	c := NewCOO(m.N, m.NNZ())
	for r := 0; r < m.N; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			c.Append(int32(r), m.Cols[i], m.Vals[i])
		}
	}
	return c
}

package sparse

// FuzzCOOToCSR feeds arbitrary byte strings, decoded into COO matrices with
// possibly out-of-range coordinates, through the normalization pipeline
// (SortRowMajor + DedupSum) and — when the result validates — through the
// COO→CSR→COO round trip. Nothing along the way may panic, and a valid
// round trip must preserve the nonzero multiset exactly.

import (
	"testing"
)

// decodeCOO interprets data as a stream of (row, col, val) triples over a
// matrix whose dimension is derived from the first byte. Coordinates are
// signed bytes, so negative and out-of-range indices occur naturally.
func decodeCOO(data []byte) *COO {
	n := 1
	if len(data) > 0 {
		n += int(data[0]) % 128
	}
	m := NewCOO(n, len(data)/3)
	for i := 1; i+2 < len(data); i += 3 {
		r := int32(int8(data[i]))
		c := int32(int8(data[i+1]))
		v := float64(int8(data[i+2]))
		m.Append(r, c, v)
	}
	return m
}

func FuzzCOOToCSR(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 0, 1})
	f.Add([]byte{8, 1, 2, 3, 1, 2, 5, 7, 0, 1}) // duplicate coordinate
	f.Add([]byte{2, 0xFF, 0x01, 0x09})          // negative row
	f.Add([]byte{1, 0x7F, 0x00, 0x01})          // row beyond dimension
	f.Add([]byte{16, 3, 3, 0})                  // explicit zero value

	f.Fuzz(func(t *testing.T, data []byte) {
		m := decodeCOO(data)

		// Normalization must never panic, whatever the coordinates.
		m.SortRowMajor()
		m.DedupSum()

		if err := m.Validate(); err != nil {
			return // out-of-range input is rightly rejected; panics are not
		}

		csr := ToCSR(m)
		if csr == nil {
			t.Fatal("ToCSR returned nil for a valid matrix")
		}
		if err := csr.Validate(); err != nil {
			t.Fatalf("CSR of a valid COO fails validation: %v", err)
		}
		if csr.NNZ() != m.NNZ() {
			t.Fatalf("CSR has %d nonzeros, COO has %d", csr.NNZ(), m.NNZ())
		}

		back := csr.ToCOO()
		if back.N != m.N || back.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.N, back.NNZ(), m.N, m.NNZ())
		}
		// A validated COO is row-major with unique coordinates, and
		// CSR.ToCOO emits row-major order, so the round trip must be an
		// exact entry-for-entry match — the nonzero multiset is preserved.
		for i := 0; i < m.NNZ(); i++ {
			r1, c1, v1 := m.At(i)
			r2, c2, v2 := back.At(i)
			if r1 != r2 || c1 != c2 || v1 != v2 {
				t.Fatalf("round trip changed entry %d: (%d,%d)=%g vs (%d,%d)=%g",
					i, r2, c2, v2, r1, c1, v1)
			}
		}
	})
}

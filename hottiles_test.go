package hottiles

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
)

func demoMatrix(seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	return gen.BlockCommunity(rng, 1024, 64, 0.5, 4)
}

func demoArch() Arch {
	a := SpadeSextans(4)
	a.TileH, a.TileW = 128, 128
	return a
}

func TestPartitionAndSimulateEndToEnd(t *testing.T) {
	m := demoMatrix(1)
	a := demoArch()
	plan, err := Partition(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	din := NewDense(m.N, a.K)
	for i := range din.Data {
		din.Data[i] = 1
	}
	res, err := Simulate(plan, &a, din, SimOptions{Serial: plan.Partition.Serial})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(m, din)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := res.Output.MaxAbsDiff(want)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-9 {
		t.Fatalf("simulated result differs from reference by %g", diff)
	}
	if res.Time <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestSimulateGuards(t *testing.T) {
	m := demoMatrix(2)
	a := demoArch()
	if _, err := Simulate(nil, &a, nil, SimOptions{}); err == nil {
		t.Fatal("expected nil-plan error")
	}
	p := PIUMA()
	p.TileH, p.TileW = 128, 128
	plan, err := Partition(m, &p, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(plan, &p, nil, SimOptions{Serial: true}); err == nil {
		t.Fatal("expected serial-on-PIUMA error")
	}
}

func TestMatrixMarketRoundTripViaFacade(t *testing.T) {
	m := demoMatrix(3)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() || back.N != m.N {
		t.Fatal("round trip changed shape")
	}
}

func TestGReferenceMinPlus(t *testing.T) {
	m := demoMatrix(4)
	din := NewDense(m.N, 4)
	for i := range din.Data {
		din.Data[i] = 1
	}
	out, err := GReference(m, din, MinPlus())
	if err != nil {
		t.Fatal(err)
	}
	if out.N != m.N || out.K != 4 {
		t.Fatal("bad shape")
	}
}

func TestCalibrateViaFacade(t *testing.T) {
	a := demoArch()
	reports, err := Calibrate(&a, []*Matrix{demoMatrix(5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
}

func TestIsoScaleExploreViaFacade(t *testing.T) {
	entries, err := IsoScaleExplore(demoMatrix(6), 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("%d entries, want 5", len(entries))
	}
}

func TestBenchmarkSuitesExposed(t *testing.T) {
	if len(Benchmarks()) != 10 || len(DenseBenchmarks()) != 5 {
		t.Fatal("suites wrong")
	}
	if _, ok := BenchmarkByShort("kro"); !ok {
		t.Fatal("ByShort broken")
	}
}

func TestStrategiesAndHeuristicsExposed(t *testing.T) {
	if StrategyHotTiles.String() != "HotTiles" {
		t.Fatal("strategy constants wrong")
	}
	if MinByteSerial.String() != "MinByte Serial" {
		t.Fatal("heuristic constants wrong")
	}
	for _, s := range []Semiring{PlusTimes(), MinPlus(), MaxPlus(), BoolOrAnd()} {
		if s.Name == "" {
			t.Fatal("semiring unnamed")
		}
	}
	if ScaledSemiring(PlusTimes(), 4).OpsPerMAC != 8 {
		t.Fatal("scaled semiring wrong")
	}
}

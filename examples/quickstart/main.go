// Quickstart: partition one sparse matrix with HotTiles and simulate the
// heterogeneous execution, comparing against the homogeneous and
// IMH-unaware baselines — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"
	"math/rand"

	hottiles "repro"
	"repro/internal/gen"
)

func main() {
	// A matrix with strong intra-matrix heterogeneity: dense citation-style
	// communities on the diagonal over a sparse background (the paper's
	// "pap" structure).
	rng := rand.New(rand.NewSource(42))
	m := gen.BlockCommunity(rng, 4096, 96, 0.6, 6)
	fmt.Printf("matrix: %d rows, %d nonzeros, density %.2e\n\n", m.N, m.NNZ(), m.Density())

	// The baseline SPADE-Sextans architecture (Table IV, scale 4), with a
	// tile size matched to this small demo matrix.
	a := hottiles.SpadeSextans(4)
	a.TileH, a.TileW = 128, 128

	din := hottiles.NewDense(m.N, a.K)
	for i := range din.Data {
		din.Data[i] = rng.Float64()
	}
	want, err := hottiles.Reference(m, din)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s%14s%12s%16s\n", "strategy", "runtime (ms)", "hot nnz %", "max |err|")
	for _, s := range []hottiles.Strategy{
		hottiles.StrategyColdOnly,
		hottiles.StrategyHotOnly,
		hottiles.StrategyIUnaware,
		hottiles.StrategyHotTiles,
	} {
		plan, err := hottiles.Partition(m, &a, s, 2, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hottiles.Simulate(plan, &a, din, hottiles.SimOptions{
			Serial: plan.Partition.Serial,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Every strategy must produce the exact same numeric result.
		diff, err := res.Output.MaxAbsDiff(want)
		if err != nil {
			log.Fatal(err)
		}
		_, frac := plan.Partition.HotNNZ(plan.Grid)
		fmt.Printf("%-10s%14.4f%11.0f%%%16.2e\n", s, res.Time*1e3, frac*100, diff)
	}
	fmt.Println("\nHotTiles routes the dense communities to the Sextans streamer and")
	fmt.Println("the sparse background to the latency-tolerant SPADE PEs.")
}

// GNN aggregation: the workload class that motivates the paper's
// introduction. A graph neural network layer computes Dout = A · H, where A
// is a power-law graph adjacency matrix and H the node-feature matrix
// (K = 32 features, as in the paper's §VII-B). The HotTiles preprocessing
// is a one-time cost amortized across training epochs — exactly the usage
// the paper describes in §VI-B ("generated and used during GNN training
// ... saved and reused during GNN inference").
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	hottiles "repro"
	"repro/internal/gen"
)

const epochs = 20

func main() {
	// A soc-Pokec-like social graph: power-law degrees, a few hub rows that
	// form hot tiles around the high-degree vertices.
	rng := rand.New(rand.NewSource(3))
	adj := gen.PowerLaw(rng, 16384, 20, 2.1)
	fmt.Printf("graph: %d nodes, %d edges (avg degree %.1f)\n\n",
		adj.N, adj.NNZ(), float64(adj.NNZ())/float64(adj.N))

	// PIUMA: the graph-analytics architecture. Its atomic engine lets MTPs
	// and STPs share one output buffer, so there is never a merge.
	a := hottiles.PIUMA()
	a.TileH, a.TileW = 256, 256

	start := time.Now()
	plan, err := hottiles.Partition(adj, &a, hottiles.StrategyHotTiles, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	prep := time.Since(start)
	_, frac := plan.Partition.HotNNZ(plan.Grid)
	fmt.Printf("one-time preprocessing: %v (%.0f%% of edges on STP hot workers)\n",
		prep.Round(time.Microsecond), frac*100)

	// Feature matrix for the first layer.
	features := hottiles.NewDense(adj.N, a.K)
	for i := range features.Data {
		features.Data[i] = rng.NormFloat64()
	}

	// Simulate the aggregation across epochs: the same plan is reused; only
	// the features change.
	var total float64
	for epoch := 0; epoch < epochs; epoch++ {
		res, err := hottiles.Simulate(plan, &a, features, hottiles.SimOptions{
			SkipFunctional: epoch > 0, // verify numerics once
		})
		if err != nil {
			log.Fatal(err)
		}
		if epoch == 0 {
			want, err := hottiles.Reference(adj, features)
			if err != nil {
				log.Fatal(err)
			}
			diff, _ := res.Output.MaxAbsDiff(want)
			fmt.Printf("epoch 0 functional check: max |diff| = %.2e\n", diff)
			fmt.Printf("per-epoch aggregation: %.3f ms at %.1f GB/s "+
				"(MTPs %.1f GFLOP/s, STPs %.1f GFLOP/s)\n",
				res.Time*1e3, res.BandwidthUtil()/1e9, res.ColdGFLOPs(), res.HotGFLOPs())
		}
		total += res.Time
	}
	fmt.Printf("\n%d epochs of simulated aggregation: %.2f ms total\n", epochs, total*1e3)

	// Compare against homogeneous execution to show what heterogeneity buys.
	for _, s := range []hottiles.Strategy{hottiles.StrategyColdOnly, hottiles.StrategyHotOnly} {
		p, err := hottiles.Partition(adj, &a, s, 2, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hottiles.Simulate(p, &a, features, hottiles.SimOptions{SkipFunctional: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s per epoch: %.3f ms (%.2fx slower than HotTiles)\n",
			s, res.Time*1e3, res.Time/(total/epochs))
	}
}

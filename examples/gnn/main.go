// GNN inference: the workload class that motivates the paper's
// introduction. A graph neural network forward pass chains aggregation
// layers H ← ReLU(A · H), where A is a power-law graph adjacency matrix
// and H the node-feature matrix (K = 32 features, as in the paper's
// §VII-B). The HotTiles preprocessing runs once and every layer reuses the
// plan — exactly the usage the paper describes in §VI-B ("generated and
// used during GNN training ... saved and reused during GNN inference") —
// and each layer's output genuinely feeds the next layer's input.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	hottiles "repro"
	"repro/internal/gen"
)

const layers = 4

func main() {
	// A soc-Pokec-like social graph: power-law degrees, a few hub rows that
	// form hot tiles around the high-degree vertices.
	rng := rand.New(rand.NewSource(3))
	adj := gen.PowerLaw(rng, 16384, 20, 2.1)
	fmt.Printf("graph: %d nodes, %d edges (avg degree %.1f)\n\n",
		adj.N, adj.NNZ(), float64(adj.NNZ())/float64(adj.N))

	// PIUMA: the graph-analytics architecture. Its atomic engine lets MTPs
	// and STPs share one output buffer, so there is never a merge.
	a := hottiles.PIUMA()
	a.TileH, a.TileW = 256, 256

	// Feature matrix for the input layer.
	features := hottiles.NewDense(adj.N, a.K)
	for i := range features.Data {
		features.Data[i] = rng.NormFloat64()
	}

	// One call: partition once, then chain the layers — layer i's output
	// passes through ReLU and becomes layer i+1's dense operand.
	start := time.Now()
	res, err := hottiles.RunGNN(context.Background(), adj, &a, features, hottiles.GNNConfig{
		Layers: layers,
	})
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	_, frac := res.Plan.Partition.HotNNZ(res.Plan.Grid)
	fmt.Printf("one plan for %d layers (%.0f%% of edges on STP hot workers), wall %v\n",
		layers, frac*100, wall.Round(time.Millisecond))
	for i, lt := range res.LayerTimes {
		fmt.Printf("  layer %d: %.3f ms simulated\n", i, lt*1e3)
	}
	fmt.Printf("forward pass: %.3f ms simulated total\n\n", res.SimTotal*1e3)

	// Verify the chained numerics against the reference kernel, chained by
	// hand with the same ReLU placement.
	want := features.Clone()
	for layer := 0; layer < layers; layer++ {
		next, err := hottiles.Reference(adj, want)
		if err != nil {
			log.Fatal(err)
		}
		if layer < layers-1 {
			for i, v := range next.Data {
				if v < 0 {
					next.Data[i] = 0
				}
			}
		}
		want = next
	}
	diff, _ := res.Output.MaxAbsDiff(want)
	maxAbs := 1.0
	for _, v := range want.Data {
		if v > maxAbs {
			maxAbs = v
		} else if -v > maxAbs {
			maxAbs = -v
		}
	}
	fmt.Printf("functional check vs hand-chained reference: relative error = %.2e\n\n", diff/maxAbs)

	// Compare against homogeneous execution to show what heterogeneity buys.
	perLayer := res.SimTotal / layers
	for _, s := range []hottiles.Strategy{hottiles.StrategyColdOnly, hottiles.StrategyHotOnly} {
		hres, err := hottiles.RunGNN(context.Background(), adj, &a, nil, hottiles.GNNConfig{
			Layers: layers, Strategy: s, SkipFunctional: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s per layer: %.3f ms (%.2fx slower than HotTiles)\n",
			s, hres.SimTotal/layers*1e3, hres.SimTotal/layers/perLayer)
	}
}

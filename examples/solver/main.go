// Solver/gSpMM: a finite-element matrix (Serena-like block 3D stencil)
// multiplied under generalized semirings of growing arithmetic intensity on
// the SPADE-Sextans+PCIe architecture — the paper's Figure 14 scenario. At
// low intensity the on-chip SPADE PEs absorb nearly everything (PCIe makes
// streaming to the off-die Sextans expensive); as the monoids get heavier
// the enhanced Sextans, which retires 20 nonzeros per cycle regardless of
// intensity, takes over.
package main

import (
	"fmt"
	"log"
	"math/rand"

	hottiles "repro"
	"repro/internal/gen"
)

func main() {
	// A Serena-like FEM matrix: 3D stencil with 2x2 unknown blocks.
	m := gen.Stencil3D(22, 22, 22, 2)
	fmt.Printf("FEM matrix: %d rows, %d nonzeros (%.1f per row)\n\n",
		m.N, m.NNZ(), float64(m.NNZ())/float64(m.N))

	a := hottiles.SpadeSextansPCIe()
	a.TileH, a.TileW = 256, 256

	rng := rand.New(rand.NewSource(9))
	din := hottiles.NewDense(m.N, a.K)
	for i := range din.Data {
		din.Data[i] = rng.Float64()
	}

	fmt.Printf("%10s%14s%12s%14s%14s\n",
		"ops/nnz", "HotTiles ms", "hot nnz %", "ColdOnly ms", "HotOnly ms")
	for _, factor := range []int{1, 4, 16, 64, 256} {
		// A gSpMM semiring whose ⊗ costs `factor` times the plain multiply.
		sr := hottiles.ScaledSemiring(hottiles.PlusTimes(), factor)

		times := map[hottiles.Strategy]float64{}
		var frac float64
		for _, s := range []hottiles.Strategy{
			hottiles.StrategyHotTiles, hottiles.StrategyColdOnly, hottiles.StrategyHotOnly,
		} {
			plan, err := hottiles.Partition(m, &a, s, sr.OpsPerMAC, 0)
			if err != nil {
				log.Fatal(err)
			}
			res, err := hottiles.Simulate(plan, &a, din, hottiles.SimOptions{
				Serial:         plan.Partition.Serial,
				Semiring:       &sr,
				SkipFunctional: s != hottiles.StrategyHotTiles,
			})
			if err != nil {
				log.Fatal(err)
			}
			times[s] = res.Time
			if s == hottiles.StrategyHotTiles {
				_, frac = plan.Partition.HotNNZ(plan.Grid)
				// The heavier semiring must still produce the plain product
				// (Scaled only burns cycles).
				want, err := hottiles.GReference(m, din, sr)
				if err != nil {
					log.Fatal(err)
				}
				if d, _ := res.Output.MaxAbsDiff(want); d > 1e-9 {
					log.Fatalf("gSpMM diverged by %g", d)
				}
			}
		}
		fmt.Printf("%10.0f%14.4f%11.0f%%%14.4f%14.4f\n",
			sr.OpsPerMAC, times[hottiles.StrategyHotTiles]*1e3, frac*100,
			times[hottiles.StrategyColdOnly]*1e3, times[hottiles.StrategyHotOnly]*1e3)
	}
	fmt.Println("\nAs intensity grows, work migrates across the PCIe link to the")
	fmt.Println("enhanced Sextans and the ColdOnly execution becomes compute-bound.")
}

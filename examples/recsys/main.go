// SDDMM for recommender scoring: the second kernel family the paper names
// as a direct application of HotTiles (§X). Given a user-item interaction
// graph A (here: a bipartite-flavored power-law graph) and embedding
// matrices U = V (K = 32 latent factors), SDDMM computes, for every
// observed interaction, the model's predicted affinity
// score[i] = A[r,c] · ⟨U[r,:], V[c,:]⟩ — the sparse output pattern makes
// the kernel lighter on write-back and shifts the partitioning balance
// relative to SpMM, which this example prints side by side.
package main

import (
	"fmt"
	"log"
	"math/rand"

	hottiles "repro"
	"repro/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	interactions := gen.PowerLaw(rng, 16384, 24, 2.0)
	fmt.Printf("interaction graph: %d entities, %d interactions\n\n",
		interactions.N, interactions.NNZ())

	a := hottiles.SpadeSextans(4)
	a.TileH, a.TileW = 256, 256

	embeddings := hottiles.NewDense(interactions.N, a.K)
	for i := range embeddings.Data {
		embeddings.Data[i] = rng.NormFloat64() / 8
	}

	fmt.Printf("%-8s%14s%12s%16s\n", "kernel", "runtime (ms)", "hot nnz %", "traffic (MB)")
	for _, kernel := range []hottiles.Kernel{hottiles.KernelSpMM, hottiles.KernelSDDMM} {
		plan, err := hottiles.PartitionWith(interactions, &a, hottiles.PartitionOptions{
			Strategy: hottiles.StrategyHotTiles,
			Kernel:   kernel,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := hottiles.Simulate(plan, &a, embeddings, hottiles.SimOptions{
			Serial: plan.Partition.Serial,
			Kernel: kernel,
		})
		if err != nil {
			log.Fatal(err)
		}
		_, frac := plan.Partition.HotNNZ(plan.Grid)
		fmt.Printf("%-8v%14.4f%11.0f%%%16.2f\n",
			kernel, res.Time*1e3, frac*100, res.TotalBytes()/1e6)

		if kernel == hottiles.KernelSDDMM {
			// Verify a few scores against the reference kernel. The sim's
			// values align with the grid's tile-ordered nonzeros.
			g := plan.Grid
			for _, i := range []int{0, len(res.SDDMM) / 2, len(res.SDDMM) - 1} {
				r, c := g.Rows[i], g.Cols[i]
				ur, vc := embeddings.Row(int(r)), embeddings.Row(int(c))
				dot := 0.0
				for j := range ur {
					dot += ur[j] * vc[j]
				}
				want := g.Vals[i] * dot
				if d := res.SDDMM[i] - want; d > 1e-9 || d < -1e-9 {
					log.Fatalf("score %d diverged: %g vs %g", i, res.SDDMM[i], want)
				}
			}
			fmt.Println("\nspot-checked SDDMM scores match the reference kernel")
		}
	}
	fmt.Println("SDDMM writes one score per interaction instead of dense rows,")
	fmt.Println("so its write-back traffic collapses and more tiles stay cold.")
}

// Architecture exploration (paper §VIII-B): use HotTiles' performance
// predictions to choose among nine "iso-scale" SPADE-Sextans designs that
// trade cold workers for hot ones (0-8 … 8-0), the way an architect would
// size an ASIC — or reconfigure an FPGA per matrix.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"slices"

	hottiles "repro"
	"repro/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	matrices := map[string]*hottiles.Matrix{
		"power-law graph":  gen.PowerLaw(rng, 8192, 16, 2.1),
		"dense math graph": gen.Mycielskian(11),
		"FEM stencil":      gen.Stencil3D(20, 20, 20, 1),
	}
	names := make([]string, 0, len(matrices))
	for name := range matrices {
		names = append(names, name)
	}
	slices.Sort(names) // map order is random; keep the report stable

	for _, name := range names {
		m := matrices[name]
		fmt.Printf("%s: %d rows, %d nonzeros, density %.1e\n",
			name, m.N, m.NNZ(), m.Density())
		entries, err := hottiles.IsoScaleExplore(m, 8, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s%14s%14s\n", "arch", "predicted ms", "actual ms")
		bestPred, bestAct := 0, 0
		for i, e := range entries {
			fmt.Printf("  %-6s%14.4f%14.4f\n", e.Name(), e.Predicted*1e3, e.Actual*1e3)
			if e.Predicted < entries[bestPred].Predicted {
				bestPred = i
			}
			if e.Actual < entries[bestAct].Actual {
				bestAct = i
			}
		}
		verdict := "correct"
		if bestPred != bestAct {
			verdict = fmt.Sprintf("off (actual best %s)", entries[bestAct].Name())
		}
		fmt.Printf("  HotTiles would pick %s — %s\n\n", entries[bestPred].Name(), verdict)
	}
	fmt.Println("Sparse graphs pull the design toward cold workers; dense math")
	fmt.Println("matrices toward hot ones — the paper's Table IX in miniature.")
}

// Package hottiles is a from-scratch Go reproduction of "HotTiles:
// Accelerating SpMM with Heterogeneous Accelerator Architectures"
// (Gerogiannis et al., HPCA 2024).
//
// It provides the paper's full stack as a library:
//
//   - sparse/dense matrix substrates with MatrixMarket IO and synthetic
//     generators mimicking the paper's SuiteSparse benchmark suites;
//   - the IMH-aware analytical performance model (paper §IV) and the four
//     HotTiles partitioning heuristics plus the IUnaware baseline (§V,
//     §III-B);
//   - the Figure 7 preprocessing pipeline producing per-worker-type sparse
//     formats;
//   - a fluid event-driven simulator of the three evaluated heterogeneous
//     architectures (SPADE-Sextans, SPADE-Sextans+PCIe, PIUMA) that also
//     executes SpMM functionally;
//   - vis_lat calibration (§VI-B) and iso-scale architecture exploration
//     (§VIII-B).
//
// The typical flow is: build or load a sparse matrix, pick an architecture,
// Partition it, then Simulate:
//
//	m, _ := hottiles.ReadMatrixMarket(f)
//	a := hottiles.SpadeSextans(4)
//	plan, _ := hottiles.Partition(m, &a, hottiles.StrategyHotTiles, 2, 0)
//	res, _ := hottiles.Simulate(plan, &a, din, hottiles.SimOptions{})
//
// The runnable examples under examples/ and the experiment harness behind
// cmd/spmmsim build on exactly this API.
package hottiles

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/calib"
	"repro/internal/dense"
	"repro/internal/explore"
	"repro/internal/gen"
	"repro/internal/hotcore"
	"repro/internal/mm"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/reorder"
	"repro/internal/semiring"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tile"
)

// Core data types, re-exported from the internal substrates.
type (
	// Matrix is a square sparse matrix in row-major COO form.
	Matrix = sparse.COO
	// CSRMatrix is the compressed-sparse-row form consumed by the PIUMA
	// workers.
	CSRMatrix = sparse.CSR
	// Dense is a row-major N×K dense matrix (Din / Dout).
	Dense = dense.Matrix
	// Arch describes a heterogeneous accelerator architecture.
	Arch = arch.Arch
	// Worker is one PE type's model description (paper Table III traits).
	Worker = model.Worker
	// Grid is a tiling of a sparse matrix with per-tile statistics.
	Grid = tile.Grid
	// Plan is the output of the preprocessing pipeline (paper Figure 7).
	Plan = hotcore.Prep
	// Strategy selects the partitioning method.
	Strategy = hotcore.Strategy
	// PartitionResult is a partitioning decision with its predicted runtime.
	PartitionResult = partition.Result
	// Heuristic identifies one of the four HotTiles subproblems (Table II).
	Heuristic = partition.Heuristic
	// Semiring is a gSpMM algebra.
	Semiring = semiring.Semiring
	// SimOptions configures a simulated execution.
	SimOptions = sim.Options
	// SimResult reports a simulated execution.
	SimResult = sim.Result
	// UnitCache memoizes built simulator work-unit pools across Simulate
	// calls that revisit a (plan, architecture) combination — set it as
	// SimOptions.Units when sweeping (GNN layers and batches do this
	// internally already).
	UnitCache = sim.UnitCache
	// Benchmark describes one matrix of the paper's suites (Tables V/VIII).
	Benchmark = gen.Benchmark
	// CalibrationReport describes one vis_lat fit (paper §VI-B).
	CalibrationReport = calib.Report
	// IsoScaleEntry is one architecture point of the §VIII-B exploration.
	IsoScaleEntry = explore.Entry
)

// Partitioning strategies.
const (
	StrategyHotTiles = hotcore.StrategyHotTiles
	StrategyIUnaware = hotcore.StrategyIUnaware
	StrategyHotOnly  = hotcore.StrategyHotOnly
	StrategyColdOnly = hotcore.StrategyColdOnly
)

// Kernel selects which sparse kernel is modeled, partitioned and simulated
// (paper §X: HotTiles applies to SpMV and SDDMM as well as SpMM).
type Kernel = model.Kernel

// Supported kernels.
const (
	KernelSpMM  = model.KernelSpMM
	KernelSpMV  = model.KernelSpMV
	KernelSDDMM = model.KernelSDDMM
)

// PartitionOptions configures PartitionWith beyond the plain-SpMM defaults.
type PartitionOptions = hotcore.Options

// The four HotTiles heuristics (paper Table II).
const (
	MinTimeParallel = partition.MinTimeParallel
	MinTimeSerial   = partition.MinTimeSerial
	MinByteParallel = partition.MinByteParallel
	MinByteSerial   = partition.MinByteSerial
)

// Architecture presets (paper §VI-A).
var (
	// SpadeSextans returns the on-die SPADE+Sextans architecture at a
	// Table IV system scale (1, 2, 4 or 8).
	SpadeSextans = arch.SpadeSextans
	// SpadeSextansSkewed returns the c-h iso-scale variants of §VIII-B.
	SpadeSextansSkewed = arch.SpadeSextansSkewed
	// SpadeSextansPCIe returns the off-die enhanced-Sextans architecture.
	SpadeSextansPCIe = arch.SpadeSextansPCIe
	// PIUMA returns the MTP+STP architecture with its atomic engine.
	PIUMA = arch.PIUMA
	// CPUDSA returns the §X future-work CPU + streaming-accelerator system.
	CPUDSA = arch.CPUDSA
)

// Semirings for gSpMM (paper §II-A).
var (
	PlusTimes      = semiring.PlusTimes
	MinPlus        = semiring.MinPlus
	MaxPlus        = semiring.MaxPlus
	BoolOrAnd      = semiring.BoolOrAnd
	ScaledSemiring = semiring.Scaled
)

// Benchmark suites (paper Tables V and VIII).
var (
	Benchmarks       = gen.Benchmarks
	DenseBenchmarks  = gen.DenseBenchmarks
	BenchmarkByShort = gen.ByShort
)

// ReadMatrixMarket parses a MatrixMarket coordinate stream into a row-major
// deduplicated Matrix (symmetric inputs are expanded).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return mm.Read(r) }

// WriteMatrixMarket writes m as a general real coordinate MatrixMarket
// stream.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return mm.Write(w, m) }

// NewDense returns an N×K zero dense matrix.
func NewDense(n, k int) *Dense { return dense.NewMatrix(n, k) }

// Partition runs the Figure 7 preprocessing pipeline: tile the matrix, model
// every tile for both worker types, partition with the chosen strategy, and
// emit the per-worker-type sparse formats. opsPerMAC carries the semiring's
// arithmetic-intensity factor (2 = plain SpMM); seed feeds IUnaware's random
// assignment.
func Partition(m *Matrix, a *Arch, strategy Strategy, opsPerMAC float64, seed int64) (*Plan, error) {
	return hotcore.Preprocess(m, a, strategy, opsPerMAC, seed)
}

// PartitionWith is Partition with full kernel control (SpMV, SDDMM).
func PartitionWith(m *Matrix, a *Arch, o PartitionOptions) (*Plan, error) {
	return hotcore.PreprocessOpts(m, a, o)
}

// Simulate executes a Plan on its architecture with the fluid event-driven
// simulator, returning timing, traffic, utilization statistics and (unless
// opts.SkipFunctional) the numeric SpMM result.
func Simulate(p *Plan, a *Arch, din *Dense, opts SimOptions) (*SimResult, error) {
	if p == nil || p.Grid == nil {
		return nil, fmt.Errorf("hottiles: nil plan")
	}
	if opts.Serial && a.AtomicRMW {
		return nil, fmt.Errorf("hottiles: %s always runs its pools in parallel", a.Name)
	}
	return sim.Run(p.Grid, p.Partition.Hot, a, din, opts)
}

// Reference computes A·Din with the golden kernel (fresh output buffer).
func Reference(m *Matrix, din *Dense) (*Dense, error) {
	out := dense.NewMatrix(m.N, din.K)
	if err := dense.SpMM(m, din, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReferenceSpMV computes y = A·x with the golden SpMV kernel.
func ReferenceSpMV(m *Matrix, x []float64) ([]float64, error) {
	y := make([]float64, m.N)
	if err := dense.SpMV(m, x, y); err != nil {
		return nil, err
	}
	return y, nil
}

// ReferenceSDDMM computes the sampled dense-dense product: one value per
// nonzero of m, out[i] = m.Vals[i] · ⟨U[r,:], V[c,:]⟩.
func ReferenceSDDMM(m *Matrix, u, v *Dense) ([]float64, error) {
	return dense.SDDMM(m, u, v)
}

// GReference computes the gSpMM product over an arbitrary semiring.
func GReference(m *Matrix, din *Dense, s Semiring) (*Dense, error) {
	out := dense.NewFilled(m.N, din.K, s.AddIdentity)
	if err := dense.GSpMM(m, din, out, s); err != nil {
		return nil, err
	}
	return out, nil
}

// Calibrate fits the vis_lat parameter of both worker types of a from
// homogeneous profiling runs on the given matrices (paper §VI-B), updating
// a in place.
func Calibrate(a *Arch, mats []*Matrix) ([]CalibrationReport, error) {
	return calib.Calibrate(a, mats)
}

// IsoScaleExplore evaluates the nine skewed SPADE-Sextans architectures
// (coldScale+hotScale == total) on matrix m, returning predicted and
// simulated runtimes per architecture (paper §VIII-B).
func IsoScaleExplore(m *Matrix, total, tileSize int) ([]IsoScaleEntry, error) {
	return explore.IsoScale(m, total, tileSize)
}

// Permutation is a symmetric relabeling of matrix rows/columns.
type Permutation = reorder.Permutation

// AutoTileResult reports one candidate of the tile-size search.
type AutoTileResult = hotcore.AutoTileResult

// Reordering passes (paper §IX-D / §X: reordering increases HotTiles'
// effectiveness by forming better-defined dense and sparse regions).
var (
	// ReorderDegreeSort relabels vertices by descending degree,
	// concentrating hubs in the top-left corner.
	ReorderDegreeSort = reorder.DegreeSort
	// ReorderBFSCluster relabels vertices in BFS order from a
	// pseudo-peripheral seed, pulling communities toward the diagonal.
	ReorderBFSCluster = reorder.BFSCluster
	// ReorderRandom returns a random permutation (the ablation control).
	ReorderRandom = reorder.Random
	// ApplyReorder computes P·A·Pᵀ.
	ApplyReorder = reorder.Apply
)

// AutoTileSize evaluates candidate square tile sizes and returns the one
// with the lowest HotTiles-predicted runtime (the free-dimension sizing of
// paper §IV), plus the per-candidate sweep.
func AutoTileSize(m *Matrix, a *Arch, candidates []int, opsPerMAC float64) (int, []AutoTileResult, error) {
	return hotcore.AutoTileSize(m, a, candidates, opsPerMAC)
}

// WritePlan serializes a preprocessing plan so it can be stored and reused
// without re-running the pipeline — the paper's GNN train-once/infer-many
// workflow (§VI-B).
func WritePlan(w io.Writer, p *Plan) error { return hotcore.WritePlan(w, p) }

// ReadPlan loads a plan written by WritePlan, revalidating its invariants.
func ReadPlan(r io.Reader) (*Plan, error) { return hotcore.ReadPlan(r) }

// PartitionCtx is PartitionWith with context cancellation: the pipeline
// checks ctx at each stage boundary, so a canceled caller (a timed-out
// hottilesd request, an interrupted batch job) stops paying for the scan,
// model, partition and format stages it no longer needs.
func PartitionCtx(ctx context.Context, m *Matrix, a *Arch, o PartitionOptions) (*Plan, error) {
	return hotcore.PreprocessCtx(ctx, m, a, o)
}

// ParseArch resolves the CLI spelling of an architecture preset:
// "spade-sextans[:scale]", "spade-sextans-pcie", "piuma" or "cpu-dsa". The
// hottiles CLI and the hottilesd daemon share this one vocabulary.
func ParseArch(name string) (Arch, error) {
	switch {
	case name == "piuma":
		return PIUMA(), nil
	case name == "cpu-dsa":
		return CPUDSA(), nil
	case name == "spade-sextans-pcie":
		return SpadeSextansPCIe(), nil
	case strings.HasPrefix(name, "spade-sextans"):
		scale := 4
		if i := strings.IndexByte(name, ':'); i >= 0 {
			if _, err := fmt.Sscanf(name[i+1:], "%d", &scale); err != nil {
				return Arch{}, fmt.Errorf("hottiles: bad scale in %q", name)
			}
		}
		return SpadeSextans(scale), nil
	default:
		return Arch{}, fmt.Errorf("hottiles: unknown architecture %q", name)
	}
}

// ParseStrategy resolves the CLI spelling of a partitioning strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "hottiles":
		return StrategyHotTiles, nil
	case "iunaware":
		return StrategyIUnaware, nil
	case "hotonly":
		return StrategyHotOnly, nil
	case "coldonly":
		return StrategyColdOnly, nil
	default:
		return 0, fmt.Errorf("hottiles: unknown strategy %q", s)
	}
}

// ParseKernel resolves the CLI spelling of a sparse kernel.
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(s) {
	case "spmm":
		return KernelSpMM, nil
	case "spmv":
		return KernelSpMV, nil
	case "sddmm":
		return KernelSDDMM, nil
	default:
		return 0, fmt.Errorf("hottiles: unknown kernel %q", s)
	}
}

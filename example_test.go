package hottiles_test

import (
	"context"
	"fmt"
	"math/rand"

	hottiles "repro"
	"repro/internal/gen"
)

// Example shows the canonical flow: build a matrix with intra-matrix
// heterogeneity, partition it with HotTiles for the baseline SPADE-Sextans
// architecture, simulate the heterogeneous execution, and verify the
// numeric result against the reference kernel.
func Example() {
	rng := rand.New(rand.NewSource(1))
	m := gen.BlockCommunity(rng, 2048, 64, 0.6, 4)

	a := hottiles.SpadeSextans(4)
	a.TileH, a.TileW = 128, 128

	plan, err := hottiles.Partition(m, &a, hottiles.StrategyHotTiles, 2, 0)
	if err != nil {
		panic(err)
	}
	din := hottiles.NewDense(m.N, a.K)
	for i := range din.Data {
		din.Data[i] = 1
	}
	res, err := hottiles.Simulate(plan, &a, din, hottiles.SimOptions{Serial: plan.Partition.Serial})
	if err != nil {
		panic(err)
	}
	want, err := hottiles.Reference(m, din)
	if err != nil {
		panic(err)
	}
	diff, _ := res.Output.MaxAbsDiff(want)
	fmt.Printf("exact result: %v\n", diff < 1e-9)
	fmt.Printf("ran faster than predicted*10: %v\n", res.Time < plan.Partition.Predicted*10)
	// Output:
	// exact result: true
	// ran faster than predicted*10: true
}

// ExamplePartitionWith demonstrates kernel selection: the same matrix
// partitioned for SDDMM, whose output is sparse.
func ExamplePartitionWith() {
	rng := rand.New(rand.NewSource(2))
	m := gen.PowerLaw(rng, 2048, 8, 2.1)
	a := hottiles.SpadeSextans(4)
	a.TileH, a.TileW = 128, 128

	plan, err := hottiles.PartitionWith(m, &a, hottiles.PartitionOptions{
		Strategy: hottiles.StrategyHotTiles,
		Kernel:   hottiles.KernelSDDMM,
	})
	if err != nil {
		panic(err)
	}
	emb := hottiles.NewDense(m.N, a.K)
	res, err := hottiles.Simulate(plan, &a, emb, hottiles.SimOptions{
		Serial: plan.Partition.Serial,
		Kernel: hottiles.KernelSDDMM,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("one value per nonzero: %v\n", len(res.SDDMM) == m.NNZ())
	// Output:
	// one value per nonzero: true
}

// ExampleCalibrate shows the §VI-B vis_lat fitting from profiling runs.
func ExampleCalibrate() {
	rng := rand.New(rand.NewSource(3))
	a := hottiles.SpadeSextans(4)
	a.TileH, a.TileW = 64, 64
	reports, err := hottiles.Calibrate(&a, []*hottiles.Matrix{
		gen.Uniform(rng, 2048, 20000),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitted %d worker types\n", len(reports))
	fmt.Printf("vis_lat positive: %v\n", reports[0].VisLat > 0 && reports[1].VisLat > 0)
	// Output:
	// fitted 2 worker types
	// vis_lat positive: true
}

// ExampleRunGNN chains a three-layer GNN forward pass over one amortized
// plan and checks the numerics against the reference SpMM chained by hand
// with the same ReLU between layers.
func ExampleRunGNN() {
	rng := rand.New(rand.NewSource(4))
	m := gen.BlockCommunity(rng, 2048, 64, 0.6, 4)
	a := hottiles.SpadeSextans(4)
	a.TileH, a.TileW = 128, 128
	features := hottiles.NewDense(m.N, a.K)
	for i := range features.Data {
		features.Data[i] = rng.Float64()*2 - 1
	}

	const layers = 3
	res, err := hottiles.RunGNN(context.Background(), m, &a, features, hottiles.GNNConfig{Layers: layers})
	if err != nil {
		panic(err)
	}

	// Reference: A·H with ReLU between layers, chained by hand.
	h := features.Clone()
	for layer := 0; layer < layers; layer++ {
		next, err := hottiles.Reference(m, h)
		if err != nil {
			panic(err)
		}
		if layer < layers-1 {
			for i, v := range next.Data {
				if v < 0 {
					next.Data[i] = 0
				}
			}
		}
		h = next
	}
	diff, _ := res.Output.MaxAbsDiff(h)
	fmt.Printf("layers simulated: %d\n", len(res.LayerTimes))
	fmt.Printf("matches hand-chained reference: %v\n", diff < 1e-9)
	fmt.Printf("per-layer cost amortized (layer 1 == layer 0): %v\n", res.LayerTimes[1] == res.LayerTimes[0])
	// Output:
	// layers simulated: 3
	// matches hand-chained reference: true
	// per-layer cost amortized (layer 1 == layer 0): true
}

package hottiles

import (
	"context"

	"repro/internal/sparse"
	"repro/internal/workload"
)

// Dynamic workloads (DESIGN.md §15): the multi-layer GNN forward pass that
// amortizes one plan across layers, the batched multi-tenant executor, and
// the evolving-graph driver with the model-driven re-plan trigger.
type (
	// GNNConfig configures RunGNN; GNNResult reports the forward pass.
	GNNConfig = workload.GNNConfig
	GNNResult = workload.GNNResult
	// BatchRequest is one kernel invocation of a multi-tenant batch;
	// BatchOptions and BatchResult configure and report RunBatch.
	BatchRequest  = workload.Request
	BatchOptions  = workload.BatchOptions
	BatchResult   = workload.BatchResult
	RequestResult = workload.RequestResult
	// Edit is one edge insert/update/delete of an evolving matrix.
	Edit = sparse.Edit
	// EvolveConfig configures EvolveAndSimulate; EvolveResult reports the
	// run, one EvolveStep per edit batch.
	EvolveConfig = workload.EvolveConfig
	EvolveResult = workload.EvolveResult
	EvolveStep   = workload.EvolveStep
)

// RunGNN runs a multi-layer GNN forward pass: the adjacency matrix is
// partitioned once, then every layer is simulated with the same plan, each
// layer's output passing through ReLU into the next layer's dense operand —
// the paper's train-once/infer-many amortization (§VI-B) made executable.
func RunGNN(ctx context.Context, m *Matrix, a *Arch, features *Dense, cfg GNNConfig) (*GNNResult, error) {
	return workload.GNN(ctx, m, a, features, cfg)
}

// RunGNNWithPlan is RunGNN with a prebuilt plan (from Partition, ReadPlan,
// or a plan cache), skipping preprocessing entirely.
func RunGNNWithPlan(ctx context.Context, p *Plan, a *Arch, features *Dense, cfg GNNConfig) (*GNNResult, error) {
	return workload.GNNWithPlan(ctx, p, a, features, cfg)
}

// RunBatch executes a mixed-kernel multi-tenant batch (SpMM, SpMV, SDDMM)
// over one shared simulated accelerator: preprocessing and per-request
// simulation fan out in parallel with plans deduplicated within the batch,
// and the schedule merge is a deterministic serial FIFO pass in submission
// order.
func RunBatch(ctx context.Context, a *Arch, reqs []BatchRequest, opts BatchOptions) (*BatchResult, error) {
	return workload.RunBatch(ctx, a, reqs, opts)
}

// EvolveAndSimulate applies batches of edge edits to a working copy of m
// (the input is never mutated), maintaining the matrix incrementally and
// re-partitioning — through the same cancellable pipeline as PartitionCtx —
// only when the analytical model predicts the stale plan's runtime has
// drifted past cfg.Threshold. Each batch ends with one simulated inference
// run, exposing the staleness-vs-re-plan-cost trade-off.
func EvolveAndSimulate(ctx context.Context, m *Matrix, a *Arch, batches [][]Edit, cfg EvolveConfig) (*EvolveResult, error) {
	return workload.Evolve(ctx, m, a, batches, cfg)
}

// NewEditStream generates a deterministic evolving-graph edit stream
// against m: steps batches, each with insertsPer preferential-attachment
// edge inserts and deletesPer uniform deletes of live edges.
func NewEditStream(seed int64, m *Matrix, steps, insertsPer, deletesPer int) ([][]Edit, error) {
	return workload.EditStream(seed, m, steps, insertsPer, deletesPer)
}

// ApplyEdits applies an edit stream to m incrementally, in one merge pass,
// preserving the row-major deduplicated invariant. Later edits to the same
// coordinate win; deleting an absent coordinate is a no-op.
func ApplyEdits(m *Matrix, edits []Edit) error { return m.ApplyEdits(edits) }

package hottiles

import (
	"encoding/json"
	"os"
	"testing"
)

// benchBaseline is the committed BENCH_*.json this PR's guards read; bump it
// together with BENCH_PR in the Makefile when a new baseline lands.
const benchBaseline = "BENCH_9.json"

// TestFanoutParity guards against the parallel/serial inversion that
// BENCH_8.json recorded for BenchmarkExperimentsFanout (parallel 231ms vs
// serial 201ms): the inversion was a measurement artifact — the second
// sub-benchmark inherited the first one's heap and GC-pacing state — fixed
// by giving each variant a freshly collected heap. The committed baseline
// must never show the parallel variant meaningfully slower than serial
// again: on multi-core machines it should win outright, and on a single
// core the two variants execute identical work, so anything beyond the
// noise bound means the fan-out path itself regressed.
func TestFanoutParity(t *testing.T) {
	data, err := os.ReadFile(benchBaseline)
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var f struct {
		Benchmarks map[string]struct {
			NsOp float64 `json:"ns_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("parsing %s: %v", benchBaseline, err)
	}
	serial, okS := f.Benchmarks["BenchmarkExperimentsFanout/serial"]
	parallel, okP := f.Benchmarks["BenchmarkExperimentsFanout/parallel"]
	if !okS || !okP {
		t.Fatalf("%s is missing the BenchmarkExperimentsFanout variants", benchBaseline)
	}
	if serial.NsOp <= 0 {
		t.Fatalf("nonsensical serial baseline %v ns/op", serial.NsOp)
	}
	// 1.15x absorbs run-to-run noise on an otherwise idle single core; a
	// genuine pool regression (oversubscription, singleflight contention)
	// shows up as a multiple, not percents.
	const noise = 1.15
	if parallel.NsOp > serial.NsOp*noise {
		t.Fatalf("baseline inversion: parallel %v ns/op > serial %v ns/op × %v — "+
			"the fan-out path regressed; re-measure with `make bench` on a quiet "+
			"machine and investigate before committing a new baseline",
			parallel.NsOp, serial.NsOp, noise)
	}
}

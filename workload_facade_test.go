package hottiles

import (
	"context"
	"testing"
)

func TestRunBatchViaFacade(t *testing.T) {
	m := demoMatrix(40)
	a := demoArch()
	din := NewDense(m.N, a.K)
	for i := range din.Data {
		din.Data[i] = 1
	}
	br, err := RunBatch(context.Background(), &a, []BatchRequest{
		{Name: "one", Matrix: m, Din: din},
		{Name: "two", Matrix: m, Din: din},
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 || br.Makespan <= 0 {
		t.Fatalf("unexpected batch result: %+v", br)
	}
	if !br.Results[1].PlanShared {
		t.Fatal("second identical request did not share the first's plan")
	}
	want, err := Reference(m, din)
	if err != nil {
		t.Fatal(err)
	}
	if !br.Results[0].Output.AlmostEqual(want, 1e-9) {
		t.Fatal("batch SpMM output differs from reference")
	}
}

func TestEvolveAndSimulateViaFacade(t *testing.T) {
	m := demoMatrix(41)
	a := demoArch()
	batches, err := NewEditStream(42, m, 3, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvolveAndSimulate(context.Background(), m, &a, batches, EvolveConfig{
		Threshold: 0.05, SkipFunctional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("got %d steps", len(res.Steps))
	}
	if res.SimTotal <= 0 {
		t.Fatal("non-positive total simulated time")
	}
}

func TestApplyEditsViaFacade(t *testing.T) {
	m := demoMatrix(43)
	before := m.NNZ()
	if err := ApplyEdits(m, []Edit{{Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 0, Del: true}}); err != nil {
		t.Fatal(err)
	}
	// Net effect of set-then-delete at one coordinate: the coordinate is
	// absent, whatever was there before.
	if m.NNZ() > before {
		t.Fatal("delete-after-insert grew the matrix")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunGNNWithPlanReusesPlan(t *testing.T) {
	m := demoMatrix(44)
	a := demoArch()
	plan, err := Partition(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunGNNWithPlan(context.Background(), plan, &a, nil, GNNConfig{
		Layers: 2, SkipFunctional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != plan {
		t.Fatal("RunGNNWithPlan rebuilt the plan")
	}
	if len(res.LayerTimes) != 2 {
		t.Fatalf("got %d layer times", len(res.LayerTimes))
	}
}

package hottiles

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one BenchmarkFigNN/BenchmarkTableNN per artifact; see
// DESIGN.md §7 for the experiment index) plus microbenchmarks of the
// pipeline stages and the ablations DESIGN.md §8 calls out. Experiment
// benches run the full study at a coarse matrix scale per iteration;
// `go run ./cmd/spmmsim -scale 64 all` prints the full-scale numbers that
// EXPERIMENTS.md records.

import (
	"bytes"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/arch"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/reorder"
	"repro/internal/sim"
	"repro/internal/tile"
)

// benchScale keeps one experiment iteration around a second.
const benchScale = 512

func newEnv(i int) *experiments.Env {
	return experiments.NewEnv(benchScale, int64(i+1))
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig14(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig15(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig16(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig17(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).Fig18(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).TableVI(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).TableVII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newEnv(i).TableIX(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentsFanout pins the wall-clock effect of the parallel
// experiments engine: the same strategy study on fresh Envs, once serial
// and once on the GOMAXPROCS-sized pool. With GOMAXPROCS >= 4 the parallel
// variant is expected to run at least 2x faster; on a single core the two
// collapse to the same serial execution (and identical results — see
// TestParallelStudyMatchesSerial).
//
// Each variant starts from a freshly collected heap. Without that, whichever
// sub-benchmark runs second inherits the first one's garbage and GC-pacing
// state and measures tens of milliseconds slower on identical work — the
// "parallel slower than serial" inversion recorded in BENCH_8.json was
// exactly this ordering artifact, not a property of the pool
// (TestFanoutParity holds the two variants to a noise bound).
func BenchmarkExperimentsFanout(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			defer par.SetWorkers(par.SetWorkers(cfg.workers))
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := newEnv(i).Fig10(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpMMParallel pins the row-panel fan-out of the functional SpMM
// kernel itself (PR 9): the same matrix·dense product once on a single
// worker (the serial inner loop) and once over the GOMAXPROCS pool in
// row-boundary-aligned panels. The outputs are bit-identical by
// construction (TestPanelParallelBitIdentical); this tracks the wall-clock
// side of that contract.
func BenchmarkSpMMParallel(b *testing.B) {
	m := benchMatrix()
	din := NewDense(m.N, 32)
	for i := range din.Data {
		din.Data[i] = 1
	}
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			defer par.SetWorkers(par.SetWorkers(cfg.workers))
			b.SetBytes(int64(m.NNZ()) * 32 * 8)
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Reference(m, din); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsDisabled pins the observability layer's no-op overhead: the
// same study as BenchmarkExperimentsFanout with no tracer attached (every
// span call is a nil check) versus with a live tracer. Compare the
// "disabled" sub-benchmark against BenchmarkExperimentsFanout from before
// internal/obs existed — the contract is <2% drift; the "enabled" variant
// bounds the cost of tracing itself.
func BenchmarkObsDisabled(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		traced bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := newEnv(i)
				if cfg.traced {
					e.SetTracer(obs.New("bench"))
				}
				if _, err := e.Fig10(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Pipeline-stage microbenchmarks -----------------------------------

func benchMatrix() *Matrix {
	rng := rand.New(rand.NewSource(1))
	return gen.BlockCommunity(rng, 16384, 96, 0.6, 8)
}

func BenchmarkTilePartition(b *testing.B) {
	m := benchMatrix()
	b.SetBytes(int64(m.NNZ() * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tile.Partition(m, 512, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelEstimateGrid(b *testing.B) {
	m := benchMatrix()
	g, err := tile.Partition(m, 512, 512)
	if err != nil {
		b.Fatal(err)
	}
	a := arch.SpadeSextans(4)
	p := model.Params{K: 32, OpsPerMAC: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.EstimateGrid(&a.Hot, g, p)
		model.EstimateGrid(&a.Cold, g, p)
	}
}

func BenchmarkPartitionHotTiles(b *testing.B) {
	m := benchMatrix()
	a := arch.SpadeSextans(4)
	g, err := tile.Partition(m, a.TileH, a.TileW)
	if err != nil {
		b.Fatal(err)
	}
	cfg := a.Config(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.HotTiles(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionIUnaware(b *testing.B) {
	m := benchMatrix()
	a := arch.SpadeSextans(4)
	g, err := tile.Partition(m, a.TileH, a.TileW)
	if err != nil {
		b.Fatal(err)
	}
	cfg := a.Config(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.IUnaware(g, cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreprocessPipeline(b *testing.B) {
	m := benchMatrix()
	a := arch.SpadeSextans(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := Partition(m, &a, StrategyHotTiles, 2, 0)
		if err != nil {
			b.Fatal(err)
		}
		_ = plan
	}
}

func BenchmarkSimulateHeterogeneous(b *testing.B) {
	m := benchMatrix()
	a := arch.SpadeSextans(4)
	g, err := tile.Partition(m, a.TileH, a.TileW)
	if err != nil {
		b.Fatal(err)
	}
	res, err := partition.HotTiles(g, a.Config(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(g, res.Hot, &a, nil, sim.Options{SkipFunctional: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceSpMM(b *testing.B) {
	m := benchMatrix()
	din := NewDense(m.N, 32)
	for i := range din.Data {
		din.Data[i] = 1
	}
	b.SetBytes(int64(m.NNZ()) * 32 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reference(m, din); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §8) ------------------------------------------

// BenchmarkAblationHeuristics forces each of the four heuristics on the
// same matrix, reporting simulated runtime as the metric (ns of simulated
// time per op via custom metric).
func BenchmarkAblationHeuristics(b *testing.B) {
	m := benchMatrix()
	a := arch.SpadeSextans(4)
	g, err := tile.Partition(m, a.TileH, a.TileW)
	if err != nil {
		b.Fatal(err)
	}
	cfg := a.Config(2)
	for _, h := range []partition.Heuristic{
		partition.MinTimeParallel, partition.MinTimeSerial,
		partition.MinByteParallel, partition.MinByteSerial,
	} {
		h := h
		b.Run(h.String(), func(b *testing.B) {
			var simTime float64
			for i := 0; i < b.N; i++ {
				res, err := partition.RunHeuristic(g, cfg, h)
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.Run(g, res.Hot, &a, nil, sim.Options{Serial: res.Serial, SkipFunctional: true})
				if err != nil {
					b.Fatal(err)
				}
				simTime = r.Time
			}
			b.ReportMetric(simTime*1e6, "simulated-us")
		})
	}
}

// BenchmarkAblationColdCache compares the simulated cold execution with
// and without the per-PE cache the analytical model ignores.
func BenchmarkAblationColdCache(b *testing.B) {
	m := benchMatrix()
	for _, withCache := range []bool{true, false} {
		withCache := withCache
		name := "cache-on"
		if !withCache {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			a := arch.SpadeSextans(4)
			if !withCache {
				a.ColdCacheBytes = 0
			}
			g, err := tile.Partition(m, a.TileH, a.TileW)
			if err != nil {
				b.Fatal(err)
			}
			var simTime float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(g, partition.AllCold(g), &a, nil, sim.Options{SkipFunctional: true})
				if err != nil {
					b.Fatal(err)
				}
				simTime = r.Time
			}
			b.ReportMetric(simTime*1e6, "simulated-us")
		})
	}
}

// BenchmarkAblationTileSize sweeps the free tile dimension (§IV: the
// methodology can be applied iteratively to size free dimensions).
func BenchmarkAblationTileSize(b *testing.B) {
	m := benchMatrix()
	for _, ts := range []int{128, 256, 512, 1024} {
		ts := ts
		b.Run(strconv.Itoa(ts), func(b *testing.B) {
			a := arch.SpadeSextans(4)
			a.TileH, a.TileW = ts, ts
			a.Hot.ScratchpadBytes = ts * a.K * 4 * 4
			var simTime float64
			for i := 0; i < b.N; i++ {
				g, err := tile.Partition(m, ts, ts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := partition.HotTiles(g, a.Config(2))
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.Run(g, res.Hot, &a, nil, sim.Options{Serial: res.Serial, SkipFunctional: true})
				if err != nil {
					b.Fatal(err)
				}
				simTime = r.Time
			}
			b.ReportMetric(simTime*1e6, "simulated-us")
		})
	}
}

// --- Kernel and reordering extensions (paper §IX-D / §X) ----------------

func BenchmarkKernels(b *testing.B) {
	m := benchMatrix()
	a := arch.SpadeSextans(4)
	for _, kernel := range []model.Kernel{model.KernelSpMM, model.KernelSpMV, model.KernelSDDMM} {
		kernel := kernel
		b.Run(kernel.String(), func(b *testing.B) {
			ka := a
			if kernel == model.KernelSpMV {
				ka.K = 1
			}
			g, err := tile.Partition(m, ka.TileH, ka.TileW)
			if err != nil {
				b.Fatal(err)
			}
			cfg := ka.Config(2)
			cfg.Params.Kernel = kernel
			if kernel == model.KernelSpMV {
				cfg.Params.K = 1
			}
			res, err := partition.HotTiles(g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var simTime float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(g, res.Hot, &ka, nil, sim.Options{
					Serial: res.Serial, Kernel: kernel, SkipFunctional: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				simTime = r.Time
			}
			b.ReportMetric(simTime*1e6, "simulated-us")
		})
	}
}

func BenchmarkAblationReorder(b *testing.B) {
	base := benchMatrix()
	variants := map[string]*Matrix{"original": base}
	if cl, err := reorder.Apply(base, reorder.BFSCluster(base)); err == nil {
		variants["bfs"] = cl
	}
	if sh, err := reorder.Apply(base, reorder.Random(base.N, 1)); err == nil {
		variants["shuffled"] = sh
	}
	for name, m := range variants {
		name, m := name, m
		b.Run(name, func(b *testing.B) {
			a := arch.SpadeSextans(4)
			g, err := tile.Partition(m, a.TileH, a.TileW)
			if err != nil {
				b.Fatal(err)
			}
			var simTime float64
			for i := 0; i < b.N; i++ {
				res, err := partition.HotTiles(g, a.Config(2))
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.Run(g, res.Hot, &a, nil, sim.Options{Serial: res.Serial, SkipFunctional: true})
				if err != nil {
					b.Fatal(err)
				}
				simTime = r.Time
			}
			b.ReportMetric(simTime*1e6, "simulated-us")
		})
	}
}

func BenchmarkReorderPasses(b *testing.B) {
	m := benchMatrix()
	b.Run("degree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reorder.DegreeSort(m)
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reorder.BFSCluster(m)
		}
	})
}

// --- Substrate microbenchmarks ------------------------------------------

func BenchmarkGenerators(b *testing.B) {
	cases := []struct {
		name string
		run  func(rng *rand.Rand) *Matrix
	}{
		{"powerlaw", func(rng *rand.Rand) *Matrix { return gen.PowerLaw(rng, 1<<14, 16, 2.1) }},
		{"rmat", func(rng *rand.Rand) *Matrix { return gen.RMAT(rng, 14, 16) }},
		{"community", func(rng *rand.Rand) *Matrix { return gen.BlockCommunity(rng, 1<<14, 96, 0.6, 8) }},
		{"mesh2d", func(rng *rand.Rand) *Matrix { return gen.Mesh2D(128, 128) }},
		{"stencil3d", func(rng *rand.Rand) *Matrix { return gen.Stencil3D(25, 25, 25, 1) }},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				m := c.run(rng)
				b.SetBytes(int64(m.NNZ() * 16))
			}
		})
	}
}

func BenchmarkMatrixMarketIO(b *testing.B) {
	m := benchMatrix()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("write", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := WriteMatrixMarket(&w, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := ReadMatrixMarket(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCalibrate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mats := []*Matrix{gen.Uniform(rng, 4096, 40000)}
	for i := 0; i < b.N; i++ {
		a := arch.SpadeSextans(4)
		a.TileH, a.TileW = 128, 128
		if _, err := Calibrate(&a, mats); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanSerialization(b *testing.B) {
	m := benchMatrix()
	a := arch.SpadeSextans(4)
	plan, err := Partition(m, &a, StrategyHotTiles, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("write", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := WritePlan(&w, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := ReadPlan(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
